#include "exec/executor.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/morsel.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "exec/health.h"
#include "exec/join_kernel.h"
#include "exec/reference_join.h"
#include "partition/partitioner.h"

namespace parqo {
namespace {

// Concurrency cap for simulated-node work: beyond this many workers the
// extra threads only add scheduling overhead (cluster sizes in the
// hundreds used to spawn one thread each).
constexpr int kMaxNodeWorkers = 32;

// Runs fn(0..n-1); when parallel, the simulated cluster's nodes work
// concurrently on the shared pool (bounded workers, no per-node thread
// spawn). fn must only touch node-local state.
void ForEachNode(int n, bool parallel,
                 const std::function<void(int)>& fn) {
  if (!parallel || n <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool::Global().ParallelFor(n, fn, kMaxNodeWorkers);
}

// Per-run fault-recovery state. `host[p]` is the physical node currently
// executing logical partition p's share of every operator; identity until
// a crash re-homes the dead node's partitions onto a survivor (the
// partition data itself lives in the durable NodeStore, so the survivor
// re-reads it). Null `fault` means the layer is disabled and none of the
// vectors are even allocated.
struct Recovery {
  // parqo-lint: allow(guarded-field) installed once before workers start
  FaultPlan* fault = nullptr;
  // parqo-lint: allow(guarded-field) installed once before workers start
  NodeHealthRegistry* health = nullptr;
  // parqo-lint: allow(guarded-field) read-only after per-run setup
  RetryPolicy policy;

  /// Whether the run pays for per-item probes and timing: either fault
  /// injection is active or a health registry wants latency samples. The
  /// plain path stays byte-for-byte the un-instrumented executor.
  bool instrumented() const { return fault != nullptr || health != nullptr; }
  /// Guards alive/host/alive_count plus the ExecMetrics recovery fields
  /// (recovery_attempts / operators_reexecuted / degraded_nodes), which
  /// live outside this struct and so cannot carry the GUARDED_BY
  /// themselves. Never held across BeginNodeOp, the retry backoff sleep,
  /// or the work item itself.
  Mutex mu{LockRank::kExecRecovery};
  std::vector<char> alive PARQO_GUARDED_BY(mu);
  std::vector<int> host PARQO_GUARDED_BY(mu);
  int alive_count PARQO_GUARDED_BY(mu) = 0;
};

// Re-homes every partition hosted by (already-marked-dead) `node` onto
// the lowest-id survivor; -1 when nobody is left and callers will report
// kUnavailable.
void RehomeLocked(Recovery& rec, int node) PARQO_REQUIRES(rec.mu) {
  int next = -1;
  for (std::size_t i = 0; i < rec.alive.size(); ++i) {
    if (rec.alive[i]) {
      next = static_cast<int>(i);
      break;
    }
  }
  if (next < 0) return;
  for (int& h : rec.host) {
    if (h == node) h = next;
  }
}

// Marks `node` crashed (idempotent under races) and re-homes every
// partition it hosted onto the lowest-id survivor.
void CrashNode(Recovery& rec, ExecMetrics& m, int node) {
  MutexLock lock(rec.mu);
  if (!rec.alive[node]) return;
  rec.alive[node] = 0;
  --rec.alive_count;
  m.degraded_nodes.push_back(node);
  RehomeLocked(rec, node);
}

// Runs logical partition `part`'s work item for one operator with crash
// detection: the hosting node is probed before the work runs, so a fired
// crash loses the whole item (nothing partial is observed) and the item
// is retried on whatever node hosts the partition after re-homing.
// `work(part)` must be runnable at most once (it may move its inputs).
template <typename Work>
Status RunOnePartition(Recovery& rec, ExecMetrics& m, const char* op,
                       int part, Work& work) {
  Retry retry(rec.policy,
              0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(part));
  for (;;) {
    int host;
    {
      MutexLock lock(rec.mu);
      if (rec.alive_count == 0) {
        return Status::Unavailable(
            std::string(op) + ": no surviving node can host partition " +
            std::to_string(part));
      }
      host = rec.host[part];
    }
    if (!retry.ShouldRetry()) {
      if (retry.budget_exhausted()) {
        return Status::Unavailable(
            std::string(op) + " on partition " + std::to_string(part) +
            ": cluster retry budget exhausted");
      }
      return Status::Unavailable(
          std::string(op) + " on partition " + std::to_string(part) +
          " failed after " + std::to_string(retry.attempts_started()) +
          " attempts");
    }
    int attempt = retry.BeginAttempt();
    if (attempt > 0) {
      MutexLock lock(rec.mu);
      ++m.recovery_attempts;
    }
    // Hedged straggler mitigation. The attempt's in-flight time on the
    // simulated cluster IS its injected delay, known at dispatch
    // (FaultPlan::PeekDelaySeconds), so the "elapsed > threshold, launch
    // a speculative copy" watchdog collapses to a deterministic check.
    // Winner rule: the copy with the strictly smaller in-flight delay
    // completes first; ties keep the primary. Both copies would read the
    // same durable partition (work(part) is keyed on the LOGICAL
    // partition; the host only decides whose fault schedule is probed),
    // so the winner's rows are bit-identical to the non-hedged run.
    if (rec.health != nullptr && rec.fault != nullptr) {
      double delay = rec.fault->PeekDelaySeconds(host);
      if (delay > rec.health->HedgeThresholdSeconds()) {
        int hedge = -1;
        double hedge_delay = delay;
        MutexLock lock(rec.mu);
        for (std::size_t i = 0; i < rec.alive.size(); ++i) {
          int cand = static_cast<int>(i);
          if (!rec.alive[i] || cand == host) continue;
          double d = rec.fault->PeekDelaySeconds(cand);
          if (d <= delay) {
            hedge = cand;
            hedge_delay = d;
            break;
          }
        }
        if (hedge >= 0) {
          ++m.hedged_ops;
          if (hedge_delay < delay) {
            ++m.hedge_wins;
            host = hedge;  // the hedge wins; the straggler copy is dropped
          }
        }
      }
    }
    Stopwatch op_watch;
    if (rec.fault != nullptr && !rec.fault->BeginNodeOp(host)) {
      if (rec.health != nullptr) rec.health->RecordNodeFailure(host);
      {
        MutexLock lock(rec.mu);
        ++m.node_failures[host];
      }
      CrashNode(rec, m, host);
      SleepSeconds(retry.NextBackoffSeconds());
      continue;
    }
    work(part);
    {
      MutexLock lock(rec.mu);
      m.node_busy_seconds[host] += op_watch.ElapsedSeconds();
      ++m.node_ops[host];
      if (attempt > 0) ++m.operators_reexecuted;
    }
    return Status::Ok();
  }
}

// Fans one operator's per-partition work over the simulated nodes. The
// disabled path is byte-for-byte the old executor: no Status vector, no
// probes, no allocations.
template <typename Work>
Status RunPartitioned(Recovery& rec, ExecMetrics& m, const char* op, int n,
                      bool parallel, Work&& work) {
  if (!rec.instrumented()) {
    ForEachNode(n, parallel, work);
    return Status::Ok();
  }
  std::vector<Status> statuses(n);
  ForEachNode(n, parallel, [&](int i) {
    statuses[i] = RunOnePartition(rec, m, op, i, work);
  });
  for (Status& st : statuses) {
    if (!st.ok()) return std::move(st);
  }
  return Status::Ok();
}

// Delivers one shipment batch of `rows` rows to partition `target`,
// re-shipping (only) this batch when the flaky network drops it. Counts
// node_rows_received on successful delivery — the reconciliation
// invariant (received sums == rows_transferred) holds under faults
// because dropped copies are accounted separately in rows_reshipped.
// Empty batches carry no payload and are not probed. Driver-thread only.
Status DeliverBatch(Recovery& rec, ExecMetrics& m, const char* op,
                    std::uint64_t rows, int target) {
  if (rec.fault == nullptr || rows == 0) {
    m.node_rows_received[target] += rows;
    return Status::Ok();
  }
  Retry retry(rec.policy,
              0x2545f4914f6cdd1dULL ^ static_cast<std::uint64_t>(target));
  for (;;) {
    if (!retry.ShouldRetry()) {
      if (retry.budget_exhausted()) {
        return Status::Unavailable(
            std::string(op) + " shipment to node " +
            std::to_string(target) + ": cluster retry budget exhausted");
      }
      return Status::Unavailable(
          std::string(op) + " shipment to node " + std::to_string(target) +
          " lost after " + std::to_string(retry.attempts_started()) +
          " attempts");
    }
    int attempt = retry.BeginAttempt();
    if (attempt > 0) ++m.recovery_attempts;
    if (rec.fault->DeliverShipment()) {
      m.node_rows_received[target] += rows;
      return Status::Ok();
    }
    ++m.shipments_dropped;
    m.rows_reshipped += rows;
    SleepSeconds(retry.NextBackoffSeconds());
  }
}

const char* SpanName(const PlanNode& node) {
  if (node.kind == PlanNode::Kind::kScan) return "exec/scan";
  switch (node.method) {
    case JoinMethod::kLocal: return "exec/local_join";
    case JoinMethod::kBroadcast: return "exec/broadcast_join";
    case JoinMethod::kRepartition: return "exec/repartition_join";
  }
  return "exec/join";
}

// 8-byte TermIds; schema width is the row's wire size.
std::uint64_t RowBytes(const std::vector<VarId>& schema) {
  return static_cast<std::uint64_t>(schema.size()) * sizeof(TermId);
}

}  // namespace

ResolvedPattern BindPattern(const TriplePattern& pattern,
                            const JoinGraph& jg, const Dictionary& dict) {
  ResolvedPattern out;
  auto bind = [&](const PatternTerm& t, TermId* c, VarId* v) {
    if (t.IsVar()) {
      *v = jg.FindVar(t.var);
    } else {
      *c = dict.Lookup(t.term);
      if (*c == kInvalidTermId) out.unmatchable = true;
    }
  };
  bind(pattern.s, &out.s, &out.var_s);
  bind(pattern.p, &out.p, &out.var_p);
  bind(pattern.o, &out.o, &out.var_o);
  for (VarId v : {out.var_s, out.var_p, out.var_o}) {
    if (v != kInvalidVarId &&
        std::find(out.schema.begin(), out.schema.end(), v) ==
            out.schema.end()) {
      out.schema.push_back(v);
    }
  }
  std::sort(out.schema.begin(), out.schema.end());
  return out;
}

struct Executor::DistTable {
  std::vector<BindingTable> per_node;
  std::vector<VarId> schema;

  std::uint64_t GlobalRows() const {
    std::uint64_t sum = 0;
    for (const BindingTable& t : per_node) sum += t.NumRows();
    return sum;
  }
};

Executor::Executor(const Cluster& cluster, const JoinGraph& jg,
                   CostParams cost_params, bool parallel_nodes,
                   RetryPolicy retry, ExecEngine engine,
                   NodeHealthRegistry* health)
    : cluster_(cluster),
      jg_(jg),
      cost_model_(cost_params),
      parallel_nodes_(parallel_nodes),
      retry_(retry),
      engine_(engine),
      health_(health) {}

BindingTable Executor::Join(const BindingTable& left,
                            const BindingTable& right) const {
  if (engine_ == ExecEngine::kRow) return ReferenceHashJoin(left, right);
  BatchJoinOptions opts;
  // Morsel parallelism composes with the per-node ForEachNode fan-out:
  // both run on the same nest-safe pool.
  opts.parallel = parallel_nodes_;
  // Merge kernel when both inputs arrive sorted on the single shared
  // variable (index scans establish the order; order-preserving
  // operators propagate it). Bit-identical to the hash kernel, so
  // kBatchHash keeps the hash path as an equivalence witness.
  if (engine_ == ExecEngine::kBatch &&
      MergeJoinKey(left, right) != kInvalidVarId) {
    merge_joins_.fetch_add(1, std::memory_order_relaxed);
    return BatchMergeJoin(left, right, opts);
  }
  return BatchHashJoin(left, right, opts);
}

Result<BindingTable> Executor::Execute(const PlanNode& plan,
                                       ExecMetrics* metrics) {
  Stopwatch watch;
  ExecMetrics local_metrics;
  ExecMetrics& m = metrics != nullptr ? *metrics : local_metrics;
  m = ExecMetrics{};
  merge_joins_.store(0, std::memory_order_relaxed);

  const int n = cluster_.num_nodes();
  m.node_rows_scanned.assign(n, 0);
  m.node_rows_received.assign(n, 0);
  m.node_rows_joined.assign(n, 0);
  m.node_busy_seconds.assign(n, 0.0);
  m.node_ops.assign(n, 0);
  m.node_failures.assign(n, 0);

  Recovery rec;
  rec.fault = ActiveFaultPlan();
  rec.health = health_;
  if (rec.instrumented()) {
    if (rec.fault != nullptr) PARQO_CHECK(rec.fault->num_nodes() >= n);
    rec.policy = retry_;
    rec.alive.assign(n, 1);
    rec.host.resize(n);
    std::iota(rec.host.begin(), rec.host.end(), 0);
    rec.alive_count = n;
  }
  if (rec.health != nullptr) {
    PARQO_CHECK(rec.health->num_nodes() >= n);
    // Pre-emptive quarantine: partitions hosted by open-breaker nodes
    // are re-homed to survivors BEFORE any work dispatches, so the
    // session never probes (and never crash-detects) a known-sick node.
    // The last survivor is never quarantined — a query beats no query.
    MutexLock lock(rec.mu);
    for (int i = 0; i < n; ++i) {
      if (rec.alive_count <= 1) break;
      if (!rec.health->AllowRoute(i)) {
        rec.alive[i] = 0;
        --rec.alive_count;
        m.quarantined_nodes.push_back(i);
      }
    }
    for (int q : m.quarantined_nodes) RehomeLocked(rec, q);
  }

  // Recursive evaluation; fills the distributed table and the measured
  // Eq. 3 cost of the subtree, or stops at the first unrecoverable fault.
  struct Frame {
    DistTable table;
    double cost = 0;
  };

  // Opt-in estimated-vs-measured cardinality per operator. Driver-thread
  // only (eval recursion runs on the driver; workers only fill tables).
  auto record_card = [&](const PlanNode& node, const DistTable& table,
                         const char* op) {
    if (!record_op_cards_) return;
    BindingTable g(table.schema);
    for (const BindingTable& t : table.per_node) g.AppendFrom(t);
    g.Deduplicate();
    ExecMetrics::OpCardinality oc;
    oc.op = op;
    for (int tp : node.tps) oc.tps.push_back(tp);
    oc.estimated = node.cardinality;
    oc.actual = g.NumRows();
    m.op_cards.push_back(std::move(oc));
  };
  std::function<Status(const PlanNode&, Frame*)> eval =
      [&](const PlanNode& node, Frame* frame) -> Status {
    // The span covers the whole subtree; nested operator spans on the
    // same thread render as a flame graph in the trace viewer.
    TraceSpan span(SpanName(node), "exec");
    if (node.kind == PlanNode::Kind::kScan) {
      ResolvedPattern rp =
          BindPattern(jg_.pattern(node.tp), jg_, cluster_.graph().dict());
      frame->table.schema = rp.schema;
      frame->table.per_node.resize(n);
      PARQO_RETURN_IF_ERROR(RunPartitioned(
          rec, m, "scan", n, parallel_nodes_, [&](int i) {
            frame->table.per_node[i] =
                engine_ != ExecEngine::kRow
                    ? cluster_.node(i).Scan(rp, kDefaultMorselRows,
                                            parallel_nodes_)
                    : cluster_.node(i).Scan(rp);
          }));
      for (int i = 0; i < n; ++i) {
        std::uint64_t rows = frame->table.per_node[i].NumRows();
        m.rows_scanned += rows;
        m.node_rows_scanned[i] += rows;
      }
      record_card(node, frame->table, "scan");
      frame->cost = 0;
      return Status::Ok();
    }

    // Evaluate children.
    std::vector<Frame> children;
    children.reserve(node.children.size());
    double max_child_cost = 0;
    std::vector<double> input_cards;
    for (const PlanNodePtr& c : node.children) {
      Frame f;
      PARQO_RETURN_IF_ERROR(eval(*c, &f));
      max_child_cost = std::max(max_child_cost, f.cost);
      input_cards.push_back(static_cast<double>(f.table.GlobalRows()));
      children.push_back(std::move(f));
    }

    if (node.method != JoinMethod::kLocal) ++m.distributed_joins;

    DistTable out;
    out.per_node.resize(n);
    switch (node.method) {
      case JoinMethod::kLocal: {
        PARQO_RETURN_IF_ERROR(RunPartitioned(
            rec, m, "local_join", n, parallel_nodes_, [&](int i) {
              BindingTable acc = children[0].table.per_node[i];
              for (std::size_t c = 1; c < children.size(); ++c) {
                acc = Join(acc, children[c].table.per_node[i]);
              }
              out.per_node[i] = std::move(acc);
            }));
        break;
      }
      case JoinMethod::kBroadcast: {
        // Keep the globally largest input partitioned; gather the rest.
        std::size_t largest = 0;
        for (std::size_t c = 1; c < children.size(); ++c) {
          if (children[c].table.GlobalRows() >
              children[largest].table.GlobalRows()) {
            largest = c;
          }
        }
        std::vector<BindingTable> gathered;
        for (std::size_t c = 0; c < children.size(); ++c) {
          if (c == largest) continue;
          BindingTable g(children[c].table.schema);
          for (const BindingTable& t : children[c].table.per_node) {
            g.AppendFrom(t);
          }
          g.Deduplicate();
          // One copy of the gathered input lands on every node; each
          // copy is one shipment the flaky network may eat.
          std::uint64_t rows = g.NumRows() * static_cast<std::uint64_t>(n);
          std::uint64_t bytes = rows * RowBytes(g.schema());
          for (int i = 0; i < n; ++i) {
            PARQO_RETURN_IF_ERROR(
                DeliverBatch(rec, m, "broadcast", g.NumRows(), i));
          }
          m.rows_transferred += rows;
          m.bytes_shipped += bytes;
          m.edges.push_back({"broadcast", rows, bytes});
          gathered.push_back(std::move(g));
        }
        PARQO_RETURN_IF_ERROR(RunPartitioned(
            rec, m, "broadcast_join", n, parallel_nodes_, [&](int i) {
              BindingTable acc = children[largest].table.per_node[i];
              for (const BindingTable& g : gathered) {
                acc = Join(acc, g);
              }
              out.per_node[i] = std::move(acc);
            }));
        break;
      }
      case JoinMethod::kRepartition: {
        // Re-hash every input on the cmd's join variable.
        std::vector<std::vector<BindingTable>> routed(children.size());
        for (std::size_t c = 0; c < children.size(); ++c) {
          const DistTable& in = children[c].table;
          routed[c].assign(n, BindingTable(in.schema));
          int col = -1;
          if (!in.per_node.empty()) {
            col = in.per_node[0].ColumnOf(node.join_var);
          }
          PARQO_CHECK(col >= 0);
          // Route column-wise: bucket each source table's row indexes by
          // target (ascending within a bucket), then ship every bucket
          // with one gather. Arrival order per target matches the old
          // per-row routing exactly.
          std::vector<std::vector<std::uint32_t>> route(n);
          for (const BindingTable& t : in.per_node) {
            for (std::vector<std::uint32_t>& b : route) b.clear();
            const std::vector<TermId>& keys = t.Column(col);
            for (std::size_t r = 0; r < t.NumRows(); ++r) {
              route[HashToNode(keys[r], n)].push_back(
                  static_cast<std::uint32_t>(r));
            }
            for (int target = 0; target < n; ++target) {
              routed[c][target].AppendGather(t, route[target].data(),
                                             route[target].size());
            }
          }
          // Deliver (and count) at the receiving end so per-node sums
          // reproduce the totals exactly: every routed row has one
          // target. One target's batch is one shipment.
          std::uint64_t edge_rows = 0;
          for (int t = 0; t < n; ++t) {
            std::uint64_t batch = routed[c][t].NumRows();
            PARQO_RETURN_IF_ERROR(
                DeliverBatch(rec, m, "repartition", batch, t));
            edge_rows += batch;
          }
          std::uint64_t edge_bytes = edge_rows * RowBytes(in.schema);
          m.rows_transferred += edge_rows;
          m.bytes_shipped += edge_bytes;
          m.edges.push_back({"repartition", edge_rows, edge_bytes});
          // Replicated source rows can meet at the target; dedup there.
          for (BindingTable& t : routed[c]) t.Deduplicate();
        }
        PARQO_RETURN_IF_ERROR(RunPartitioned(
            rec, m, "repartition_join", n, parallel_nodes_, [&](int i) {
              BindingTable acc = std::move(routed[0][i]);
              for (std::size_t c = 1; c < children.size(); ++c) {
                acc = Join(acc, routed[c][i]);
              }
              out.per_node[i] = std::move(acc);
            }));
        break;
      }
    }
    out.schema = out.per_node.empty() ? std::vector<VarId>{}
                                      : out.per_node[0].schema();
    for (int i = 0; i < n; ++i) {
      m.node_rows_joined[i] += out.per_node[i].NumRows();
    }
    record_card(node, out,
                node.method == JoinMethod::kLocal        ? "local"
                : node.method == JoinMethod::kBroadcast  ? "broadcast"
                                                         : "repartition");

    double output_card = static_cast<double>(out.GlobalRows());
    double op_cost = cost_model_.JoinOpCost(node.method, input_cards,
                                            output_card);
    m.total_work += op_cost;
    frame->cost = max_child_cost + op_cost;
    frame->table = std::move(out);
    return Status::Ok();
  };

  Frame root;
  Status st = eval(plan, &root);
  if (!st.ok()) {
    // Partial per-operator sums must never leak into reports: zero
    // everything (per-node vectors stay sized so sums still reconcile
    // at 0 == 0) and mark the run failed. Wall time is kept — it is an
    // observation of this run, not a per-operator sum.
    double wall = watch.ElapsedSeconds();
    m = ExecMetrics{};
    m.failed = true;
    m.node_rows_scanned.assign(n, 0);
    m.node_rows_received.assign(n, 0);
    m.node_rows_joined.assign(n, 0);
    m.node_busy_seconds.assign(n, 0.0);
    m.node_ops.assign(n, 0);
    m.node_failures.assign(n, 0);
    m.wall_seconds = wall;
    if (MetricsEnabled()) {
      MetricsRegistry::Global().counter("exec.failures").Add(1);
    }
    return st;
  }
  m.measured_cost = root.cost;
  m.merge_joins = merge_joins_.load(std::memory_order_relaxed);

  // Gather and deduplicate the global result.
  BindingTable result(root.table.schema);
  for (const BindingTable& t : root.table.per_node) {
    result.AppendFrom(t);
  }
  result.Deduplicate();
  m.result_rows = result.NumRows();
  m.wall_seconds = watch.ElapsedSeconds();

  if (MetricsEnabled()) {
    MetricsRegistry& reg = MetricsRegistry::Global();
    reg.counter("exec.queries").Add(1);
    reg.counter("exec.rows_scanned").Add(m.rows_scanned);
    reg.counter("exec.rows_transferred").Add(m.rows_transferred);
    reg.counter("exec.bytes_shipped").Add(m.bytes_shipped);
    reg.counter("exec.distributed_joins").Add(m.distributed_joins);
    if (m.merge_joins > 0) {
      reg.counter("exec.merge_joins").Add(m.merge_joins);
    }
    reg.counter("exec.result_rows").Add(m.result_rows);
    reg.histogram("exec.wall_seconds").Observe(m.wall_seconds);
    reg.histogram("exec.measured_cost").Observe(m.measured_cost);
    if (m.recovery_attempts > 0) {
      reg.counter("exec.recovery_attempts").Add(m.recovery_attempts);
      reg.counter("exec.operators_reexecuted").Add(m.operators_reexecuted);
      reg.counter("exec.rows_reshipped").Add(m.rows_reshipped);
      reg.counter("exec.shipments_dropped").Add(m.shipments_dropped);
      reg.counter("exec.node_crashes")
          .Add(static_cast<std::uint64_t>(m.degraded_nodes.size()));
    }
    if (m.hedged_ops > 0) {
      reg.counter("server.health.hedged_ops").Add(m.hedged_ops);
      reg.counter("server.health.hedge_wins").Add(m.hedge_wins);
    }
    if (!m.quarantined_nodes.empty()) {
      reg.counter("server.health.nodes_quarantined")
          .Add(static_cast<std::uint64_t>(m.quarantined_nodes.size()));
    }
  }
  return result;
}

Result<BindingTable> ExecuteAndProject(Executor& executor,
                                       const PlanNode& plan,
                                       const ParsedQuery& query,
                                       const JoinGraph& jg,
                                       ExecMetrics* metrics) {
  Result<BindingTable> full = executor.Execute(plan, metrics);
  if (!full.ok()) return full;
  if (query.select_all) return full;
  std::vector<VarId> vars;
  for (const std::string& name : query.select_vars) {
    VarId v = jg.FindVar(name);
    if (v == kInvalidVarId) {
      return Status::InvalidArgument("SELECT variable ?" + name +
                                     " does not occur in the query body");
    }
    vars.push_back(v);
  }
  return full->Project(vars);
}

}  // namespace parqo
