#include "exec/join_kernel.h"

#include <algorithm>

namespace parqo {
namespace {

// One probe morsel's matches: parallel index arrays into the probe and
// build tables. Chunks are reduced in morsel-index order, which is what
// keeps the parallel probe's output order identical to the serial one.
struct MatchChunk {
  std::vector<std::uint32_t> probe_rows;
  std::vector<std::uint32_t> build_rows;
};

// Gathers the matched (probe, build) row pairs into output columns, one
// gather per column, chunks in morsel order. Shared variables exist on
// both sides with equal values; prefer the left source like the
// reference engine (the choice is value-neutral). Shared by the hash and
// merge kernels, which therefore materialize byte-identically.
BindingTable MaterializeJoin(const BindingTable& left,
                             const BindingTable& right, bool build_left,
                             const std::vector<MatchChunk>& chunks,
                             BindingTable out) {
  const std::vector<VarId>& out_schema = out.schema();
  std::size_t total = 0;
  for (const MatchChunk& c : chunks) total += c.probe_rows.size();
  for (int i = 0; i < out.num_cols(); ++i) {
    int cl = left.ColumnOf(out_schema[i]);
    const bool use_left = cl >= 0;
    const std::vector<TermId>& src =
        use_left ? left.Column(cl)
                 : right.Column(right.ColumnOf(out_schema[i]));
    const bool src_is_build = use_left == build_left;
    std::vector<TermId>& dst = out.MutableColumn(i);
    dst.resize(total);
    std::size_t pos = 0;
    for (const MatchChunk& c : chunks) {
      const std::vector<std::uint32_t>& idx =
          src_is_build ? c.build_rows : c.probe_rows;
      for (std::uint32_t r : idx) dst[pos++] = src[r];
    }
  }
  // Probe-major emit preserves the probe side's known row order.
  const BindingTable& probe = build_left ? right : left;
  out.SetSortedBy(probe.sorted_by());
  return out;
}

// Cross product, left-row-major: (l0,r0..rN), (l1,r0..rN), ... Only
// arises inside constant-anchored local queries, so it stays serial.
BindingTable CrossProduct(const BindingTable& left, const BindingTable& right,
                          BindingTable out) {
  const std::size_t nl = left.NumRows();
  const std::size_t nr = right.NumRows();
  const std::vector<VarId>& schema = out.schema();
  for (int i = 0; i < out.num_cols(); ++i) {
    std::vector<TermId>& dst = out.MutableColumn(i);
    dst.resize(nl * nr);
    int cl = left.ColumnOf(schema[i]);
    std::size_t pos = 0;
    if (cl >= 0) {
      const std::vector<TermId>& src = left.Column(cl);
      for (std::size_t lr = 0; lr < nl; ++lr) {
        TermId v = src[lr];
        for (std::size_t rr = 0; rr < nr; ++rr) dst[pos++] = v;
      }
    } else {
      const std::vector<TermId>& src = right.Column(right.ColumnOf(schema[i]));
      for (std::size_t lr = 0; lr < nl; ++lr) {
        for (std::size_t rr = 0; rr < nr; ++rr) dst[pos++] = src[rr];
      }
    }
  }
  // Left-row-major: the left side's known order survives (each left row
  // is repeated contiguously).
  out.SetSortedBy(left.sorted_by());
  return out;
}

[[maybe_unused]] bool ColumnIsNonDecreasing(const std::vector<TermId>& col) {
  return std::is_sorted(col.begin(), col.end());
}

}  // namespace

std::vector<VarId> MergeSchemas(const std::vector<VarId>& a,
                                const std::vector<VarId>& b) {
  std::vector<VarId> out = a;
  for (VarId v : b) {
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<VarId> SharedSchema(const std::vector<VarId>& a,
                                const std::vector<VarId>& b) {
  std::vector<VarId> out;
  for (VarId v : a) {
    if (std::find(b.begin(), b.end(), v) != b.end()) out.push_back(v);
  }
  return out;
}

BindingTable BatchHashJoin(const BindingTable& left, const BindingTable& right,
                           const BatchJoinOptions& opts) {
  std::vector<VarId> shared = SharedSchema(left.schema(), right.schema());
  std::vector<VarId> out_schema = MergeSchemas(left.schema(), right.schema());
  BindingTable out(out_schema);
  if (left.NumRows() == 0 || right.NumRows() == 0) return out;
  if (shared.empty()) return CrossProduct(left, right, std::move(out));

  // Build on the smaller side (ties keep left, matching the reference
  // row engine so emit order agrees).
  const bool build_left = left.NumRows() <= right.NumRows();
  const BindingTable& build = build_left ? left : right;
  const BindingTable& probe = build_left ? right : left;

  std::vector<const std::vector<TermId>*> build_key, probe_key;
  for (VarId v : shared) {
    build_key.push_back(&build.Column(build.ColumnOf(v)));
    probe_key.push_back(&probe.Column(probe.ColumnOf(v)));
  }

  const std::size_t probe_rows = probe.NumRows();
  std::vector<MatchChunk> chunks(NumMorsels(probe_rows, opts.morsel_rows));

  if (shared.size() == 1 && !opts.force_generic_kernel) {
    // Specialized single-key kernel: the key IS the column; matching is
    // a direct TermId compare inside the table.
    SingleKeyJoinTable table;
    table.Build(*build_key[0]);
    const std::vector<TermId>& pk = *probe_key[0];
    ForEachMorsel(probe_rows, opts.morsel_rows, opts.parallel,
                  [&](std::size_t m, std::size_t begin, std::size_t end) {
                    MatchChunk& c = chunks[m];
                    for (std::size_t r = begin; r < end; ++r) {
                      table.ForEachMatch(pk[r], [&](std::uint32_t b) {
                        c.probe_rows.push_back(
                            static_cast<std::uint32_t>(r));
                        c.build_rows.push_back(b);
                      });
                    }
                  });
  } else {
    // Generic kernel: hash the build key columns column-at-a-time, probe
    // by hash, confirm on the actual key columns.
    std::vector<std::uint64_t> hashes(build.NumRows(),
                                      1469598103934665603ULL);
    for (const std::vector<TermId>* col : build_key) {
      for (std::size_t r = 0; r < hashes.size(); ++r) {
        hashes[r] ^= (*col)[r];
        hashes[r] *= 1099511628211ULL;
      }
    }
    MultiKeyJoinTable table;
    table.Build(hashes);
    const std::size_t nkeys = shared.size();
    ForEachMorsel(probe_rows, opts.morsel_rows, opts.parallel,
                  [&](std::size_t m, std::size_t begin, std::size_t end) {
                    MatchChunk& c = chunks[m];
                    std::vector<TermId> key(nkeys);
                    for (std::size_t r = begin; r < end; ++r) {
                      for (std::size_t i = 0; i < nkeys; ++i) {
                        key[i] = (*probe_key[i])[r];
                      }
                      std::uint64_t h = JoinKeyHash(key.data(), nkeys);
                      table.ForEachHashMatch(h, [&](std::uint32_t b) {
                        for (std::size_t i = 0; i < nkeys; ++i) {
                          if ((*build_key[i])[b] != key[i]) return;
                        }
                        c.probe_rows.push_back(
                            static_cast<std::uint32_t>(r));
                        c.build_rows.push_back(b);
                      });
                    }
                  });
  }

  return MaterializeJoin(left, right, build_left, chunks, std::move(out));
}

VarId MergeJoinKey(const BindingTable& left, const BindingTable& right) {
  if (left.NumRows() == 0 || right.NumRows() == 0) return kInvalidVarId;
  std::vector<VarId> shared = SharedSchema(left.schema(), right.schema());
  if (shared.size() != 1) return kInvalidVarId;
  const VarId key = shared[0];
  if (left.sorted_by() != key || right.sorted_by() != key) {
    return kInvalidVarId;
  }
  return key;
}

BindingTable BatchMergeJoin(const BindingTable& left,
                            const BindingTable& right,
                            const BatchJoinOptions& opts) {
  std::vector<VarId> shared = SharedSchema(left.schema(), right.schema());
  PARQO_CHECK(shared.size() == 1);
  BindingTable out(MergeSchemas(left.schema(), right.schema()));
  if (left.NumRows() == 0 || right.NumRows() == 0) return out;

  // Same side selection as the hash join: build = smaller, ties keep
  // left; output is probe-row-major.
  const bool build_left = left.NumRows() <= right.NumRows();
  const BindingTable& build = build_left ? left : right;
  const BindingTable& probe = build_left ? right : left;
  const std::vector<TermId>& bk = build.Column(build.ColumnOf(shared[0]));
  const std::vector<TermId>& pk = probe.Column(probe.ColumnOf(shared[0]));
  PARQO_DCHECK(ColumnIsNonDecreasing(bk));
  PARQO_DCHECK(ColumnIsNonDecreasing(pk));

  const std::size_t probe_rows = probe.NumRows();
  std::vector<MatchChunk> chunks(NumMorsels(probe_rows, opts.morsel_rows));
  ForEachMorsel(
      probe_rows, opts.morsel_rows, opts.parallel,
      [&](std::size_t m, std::size_t begin, std::size_t end) {
        MatchChunk& c = chunks[m];
        // Anchor this morsel's build cursor by binary search; both
        // cursors then only move forward, so a morsel's matching work is
        // O(run lengths) and independent of other morsels.
        std::size_t b_lo = static_cast<std::size_t>(
            std::lower_bound(bk.begin(), bk.end(), pk[begin]) - bk.begin());
        std::size_t b_hi = b_lo;
        TermId run_key = 0;
        bool have_run = false;
        for (std::size_t r = begin; r < end; ++r) {
          const TermId k = pk[r];
          if (!have_run || k != run_key) {
            b_lo = b_hi;
            while (b_lo < bk.size() && bk[b_lo] < k) ++b_lo;
            b_hi = b_lo;
            while (b_hi < bk.size() && bk[b_hi] == k) ++b_hi;
            run_key = k;
            have_run = true;
          }
          // Matching build rows are a contiguous ascending run — exactly
          // the order the hash-join probe chain yields.
          for (std::size_t b = b_lo; b < b_hi; ++b) {
            c.probe_rows.push_back(static_cast<std::uint32_t>(r));
            c.build_rows.push_back(static_cast<std::uint32_t>(b));
          }
        }
      });

  return MaterializeJoin(left, right, build_left, chunks, std::move(out));
}

}  // namespace parqo
