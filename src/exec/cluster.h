// The simulated shared-nothing cluster: n nodes, each holding the triples
// a Partitioner assigned to it. This substitutes for the paper's 10-node
// RDF-3X + Hadoop testbed (see DESIGN.md section 2): plans execute for
// real against the partitioned data, and the engine meters the I/O and
// network volumes that the cost model of Table I prices.

#ifndef PARQO_EXEC_CLUSTER_H_
#define PARQO_EXEC_CLUSTER_H_

#include <vector>

#include "exec/node_store.h"
#include "partition/partitioner.h"
#include "rdf/graph.h"

namespace parqo {

class Cluster {
 public:
  /// Materializes per-node stores from a partition assignment over `graph`.
  /// `graph` must outlive the cluster.
  Cluster(const RdfGraph& graph, const PartitionAssignment& assignment);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const NodeStore& node(int i) const { return nodes_[i]; }
  const RdfGraph& graph() const { return *graph_; }

  /// Total stored triples across nodes (>= graph().NumTriples() due to
  /// replication).
  std::size_t TotalStored() const;

 private:
  const RdfGraph* graph_;
  std::vector<NodeStore> nodes_;
};

}  // namespace parqo

#endif  // PARQO_EXEC_CLUSTER_H_
