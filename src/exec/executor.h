// Plan execution on the simulated cluster. Every operator of Section II-D
// is implemented for real over the partitioned stores:
//
//   scan        - each node scans its local partition for pattern matches;
//   local join  - each node joins its local inputs, no communication;
//   broadcast   - the k-1 globally smaller inputs are gathered and handed
//                 to every node holding the largest input's partitions;
//   repartition - all inputs are re-hashed on the cmd's join variable,
//                 then joined per node on all shared variables.
//
// Alongside the actual result, the executor reports ExecMetrics: the
// cost-model time of Eq. 3/4 evaluated with *measured* cardinalities
// (the paper's "query processing time" proxy in this reproduction — see
// DESIGN.md), plus raw I/O and network row counts and wall time.
//
// Failure semantics (DESIGN.md section 11): under an active FaultScope
// (common/fault.h) a node can crash mid-operator and a shipment can be
// dropped. The executor detects both, marks crashed nodes degraded for
// the rest of the query, re-executes the lost partition work on a
// surviving node (re-reading the partition from the durable NodeStore),
// and re-ships only the lost batches — all bounded by a RetryPolicy.
// When recovery is impossible the query returns a typed
// StatusCode::kUnavailable and zeroed metrics; it never returns a
// silently wrong result. With no FaultScope the fault path costs one
// null-pointer check per operator work item and allocates nothing.

#ifndef PARQO_EXEC_EXECUTOR_H_
#define PARQO_EXEC_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "cost/cost_model.h"
#include "exec/cluster.h"
#include "plan/plan.h"
#include "query/join_graph.h"
#include "sparql/query.h"

namespace parqo {

struct ExecMetrics {
  /// Eq. 3 plan time with measured input/output cardinalities.
  double measured_cost = 0;
  std::uint64_t rows_scanned = 0;
  std::uint64_t rows_transferred = 0;
  /// Broadcast/repartition operators executed. In a MapReduce-like
  /// engine each one is a distributed job with fixed scheduling latency,
  /// which is why local plans win by an order of magnitude in the paper;
  /// benches add `overhead * distributed_joins` to model that.
  std::uint64_t distributed_joins = 0;
  std::uint64_t result_rows = 0;  ///< After global deduplication.
  double wall_seconds = 0;

  /// Node-local joins the batch engine ran with the merge kernel instead
  /// of the hash kernel (both inputs sorted on the single shared
  /// variable). Purely an implementation-choice counter: outputs are
  /// bit-identical either way, so engine-equivalence comparisons exclude
  /// it.
  std::uint64_t merge_joins = 0;

  /// Per-operator estimated-vs-measured cardinality, recorded only when
  /// Executor::set_record_op_cardinalities(true) is set (bench/report
  /// use — it costs one global gather + dedup per operator). `actual` is
  /// the operator's deduplicated GLOBAL output-row count, the quantity
  /// the Eq. 10/11 estimator's PlanNode::cardinality predicts.
  struct OpCardinality {
    std::string op;        ///< "scan" | "local" | "broadcast" | "repartition"
    std::vector<int> tps;  ///< Pattern indexes the subtree covers.
    double estimated = 0;  ///< PlanNode::cardinality at planning time.
    std::uint64_t actual = 0;
  };
  std::vector<OpCardinality> op_cards;

  /// Sum of every operator's Eq. 3 cost, ignoring the max over children:
  /// the total work. measured_cost is the critical path, so
  /// measured_cost / total_work is the plan's inherent parallelism.
  double total_work = 0;
  /// rows_transferred weighted by row width (8-byte TermIds).
  std::uint64_t bytes_shipped = 0;

  /// Per-node attribution, sized to the cluster by Execute(). Each
  /// vector's sum equals the matching scalar above exactly
  /// (node_rows_received sums to rows_transferred).
  std::vector<std::uint64_t> node_rows_scanned;
  std::vector<std::uint64_t> node_rows_received;
  std::vector<std::uint64_t> node_rows_joined;  ///< Join output rows.

  /// One entry per network edge: a broadcast ships one gathered input to
  /// every node; a repartition re-hashes one input.
  struct EdgeTraffic {
    std::string op;  // "broadcast" | "repartition"
    std::uint64_t rows = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<EdgeTraffic> edges;

  /// Recovery accounting (all zero on a fault-free run). The scalar
  /// traffic totals above only count *successful* deliveries, so the
  /// per-node reconciliation invariant survives faults; the wasted
  /// traffic of re-sent batches shows up in rows_reshipped instead.
  /// True when Execute() returned a non-OK status: every other field is
  /// zeroed so partial per-operator sums can never leak into reports.
  bool failed = false;
  std::uint64_t recovery_attempts = 0;    ///< Retry attempts after faults.
  std::uint64_t operators_reexecuted = 0; ///< Work items that needed > 1 try.
  std::uint64_t rows_reshipped = 0;       ///< Rows sent again after a drop.
  std::uint64_t shipments_dropped = 0;    ///< Batches the network ate.
  std::vector<int> degraded_nodes;        ///< Nodes that crashed, in order.

  /// Health instrumentation (exec/health.h; populated only when the run
  /// is instrumented, i.e. a FaultScope is active or a
  /// NodeHealthRegistry is attached — the plain path stays untimed).
  /// Per-PHYSICAL-node attribution: re-homed and hedged work counts
  /// toward the node that actually executed it.
  std::vector<double> node_busy_seconds;      ///< Wall time in work items.
  std::vector<std::uint64_t> node_ops;        ///< Work items completed.
  std::vector<std::uint64_t> node_failures;   ///< Probe failures detected.
  std::uint64_t hedged_ops = 0;  ///< Speculative re-executions launched.
  std::uint64_t hedge_wins = 0;  ///< Hedges that completed first.
  /// Nodes pre-emptively routed around because their circuit breaker was
  /// open at dispatch (never probed, so they cost no mid-query crash
  /// detection and do not appear in degraded_nodes).
  std::vector<int> quarantined_nodes;
};

/// Resolves a pattern's constants against the dictionary and its variables
/// against the join graph's VarIds.
ResolvedPattern BindPattern(const TriplePattern& pattern,
                            const JoinGraph& jg, const Dictionary& dict);

/// Which per-node join/scan implementation Execute() runs. kBatch is the
/// production path (columnar morsel-driven kernels, exec/join_kernel.h)
/// and picks the merge kernel whenever both inputs are known-sorted on
/// the single shared variable; kBatchHash is the same batch path with the
/// merge kernel disabled (hash joins only), kept as an equivalence
/// witness and for before/after benchmarks; kRow is the row-at-a-time
/// reference path (exec/reference_join.h) kept for golden equivalence
/// testing. All three produce bit-identical BindingTables (DESIGN.md
/// sections 13 and 17).
enum class ExecEngine { kRow, kBatch, kBatchHash };

class NodeHealthRegistry;  // exec/health.h

class Executor {
 public:
  /// All references must outlive the executor. With `parallel_nodes` the
  /// per-node work of every operator (scans and joins) runs on one
  /// thread per simulated node, like the real cluster would. `retry`
  /// bounds fault recovery; it is irrelevant without an active
  /// FaultScope. `health` (optional, not owned) attaches the cross-query
  /// resilience layer: open-breaker nodes are quarantined at dispatch,
  /// straggling work is hedged against the registry's threshold, and
  /// mid-query crash detections are reported back immediately.
  Executor(const Cluster& cluster, const JoinGraph& jg,
           CostParams cost_params, bool parallel_nodes = false,
           RetryPolicy retry = RetryPolicy{},
           ExecEngine engine = ExecEngine::kBatch,
           NodeHealthRegistry* health = nullptr);

  /// Executes `plan` and returns the deduplicated global result over all
  /// of the query's variables. Fills `metrics` if non-null; on error the
  /// metrics are zeroed with `failed` set (never partial sums).
  Result<BindingTable> Execute(const PlanNode& plan, ExecMetrics* metrics);

  /// Records per-operator estimated-vs-measured cardinality into
  /// ExecMetrics::op_cards. Off by default: it adds one global gather +
  /// dedup per operator, which benches opt into but queries do not pay.
  void set_record_op_cardinalities(bool on) { record_op_cards_ = on; }

 private:
  struct DistTable;  // per-node tables; defined in the .cc

  /// Joins two node-local inputs with the configured engine.
  BindingTable Join(const BindingTable& left,
                    const BindingTable& right) const;

  const Cluster& cluster_;
  const JoinGraph& jg_;
  CostModel cost_model_;
  bool parallel_nodes_;
  RetryPolicy retry_;
  ExecEngine engine_;
  NodeHealthRegistry* health_;
  bool record_op_cards_ = false;
  /// Merge-kernel picks this run; workers bump it concurrently, Execute()
  /// snapshots it into ExecMetrics::merge_joins.
  // parqo-lint: allow(guarded-field) atomic counter, relaxed order is fine
  mutable std::atomic<std::uint64_t> merge_joins_{0};
};

/// Convenience: executes and projects onto the query's SELECT variables.
Result<BindingTable> ExecuteAndProject(Executor& executor,
                                       const PlanNode& plan,
                                       const ParsedQuery& query,
                                       const JoinGraph& jg,
                                       ExecMetrics* metrics);

}  // namespace parqo

#endif  // PARQO_EXEC_EXECUTOR_H_
