#include "plan/plan.h"

#include <algorithm>

#include "common/status.h"
#include "common/strings.h"

namespace parqo {

int PlanNode::NumJoinOps() const {
  if (kind == Kind::kScan) return 0;
  int n = 1;
  for (const PlanNodePtr& c : children) n += c->NumJoinOps();
  return n;
}

int PlanNode::JoinDepth() const {
  if (kind == Kind::kScan) return 0;
  int d = 0;
  for (const PlanNodePtr& c : children) d = std::max(d, c->JoinDepth());
  return d + 1;
}

PlanNodePtr PlanBuilder::Scan(int tp) const {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kScan;
  node->tp = tp;
  node->tps = TpSet::Singleton(tp);
  node->cardinality = estimator_->Cardinality(node->tps);
  node->op_cost = 0;
  node->total_cost = 0;
  return node;
}

PlanNodePtr PlanBuilder::Join(JoinMethod method, VarId join_var,
                              std::vector<PlanNodePtr> children) const {
  PARQO_CHECK(children.size() >= 2);
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kJoin;
  node->method = method;
  node->join_var = join_var;

  std::vector<double> input_cards;
  input_cards.reserve(children.size());
  double max_child_cost = 0;
  for (const PlanNodePtr& c : children) {
    node->tps |= c->tps;
    input_cards.push_back(c->cardinality);
    max_child_cost = std::max(max_child_cost, c->total_cost);
  }
  node->cardinality = estimator_->Cardinality(node->tps);
  node->op_cost =
      cost_model_.JoinOpCost(method, input_cards, node->cardinality);
  node->total_cost = max_child_cost + node->op_cost;  // Eq. 3
  node->children = std::move(children);
  return node;
}

PlanNodePtr PlanBuilder::LocalJoinAll(TpSet sq) const {
  PARQO_CHECK(sq.Count() >= 2);
  std::vector<PlanNodePtr> scans;
  scans.reserve(sq.Count());
  for (int tp : sq) scans.push_back(Scan(tp));
  return Join(JoinMethod::kLocal, kInvalidVarId, std::move(scans));
}

namespace {

char MethodLetter(JoinMethod m) {
  switch (m) {
    case JoinMethod::kLocal: return 'L';
    case JoinMethod::kBroadcast: return 'B';
    case JoinMethod::kRepartition: return 'R';
  }
  return '?';
}

void Render(const PlanNode& node, const JoinGraph& jg, int indent,
            std::string* out) {
  out->append(indent * 2, ' ');
  if (node.kind == PlanNode::Kind::kScan) {
    // Appends, not chained operator+: GCC 12 -Wrestrict false positive
    // (PR105651) under -O2.
    *out += "Scan tp";
    *out += std::to_string(node.tp);
    *out += " [";
    *out += jg.pattern(node.tp).ToString();
    *out += "]";
  } else {
    *out += "Join";
    *out += MethodLetter(node.method);
    if (node.join_var != kInvalidVarId) {
      *out += " on ?" + jg.var_name(node.join_var);
    }
    *out += " " + node.tps.ToString();
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  (card=%.3g, op=%.3g, total=%.3g)\n",
                node.cardinality, node.op_cost, node.total_cost);
  *out += buf;
  for (const PlanNodePtr& c : node.children) {
    Render(*c, jg, indent + 1, out);
  }
}

}  // namespace

std::string PlanToString(const PlanNode& plan, const JoinGraph& jg) {
  std::string out;
  Render(plan, jg, 0, &out);
  return out;
}

std::string PlanToCompactString(const PlanNode& plan) {
  if (plan.kind == PlanNode::Kind::kScan) {
    return "tp" + std::to_string(plan.tp);
  }
  std::string out = "(";
  for (std::size_t i = 0; i < plan.children.size(); ++i) {
    if (i > 0) {
      out += " *";
      out += MethodLetter(plan.method);
      out += " ";
    }
    out += PlanToCompactString(*plan.children[i]);
  }
  out += ")";
  return out;
}

}  // namespace parqo
