#include "plan/plan.h"

#include <algorithm>

#include "common/status.h"
#include "common/strings.h"

namespace parqo {

int PlanNode::NumJoinOps() const {
  if (kind == Kind::kScan) return 0;
  int n = 1;
  for (const PlanNodePtr& c : children) n += c->NumJoinOps();
  return n;
}

int PlanNode::JoinDepth() const {
  if (kind == Kind::kScan) return 0;
  int d = 0;
  for (const PlanNodePtr& c : children) d = std::max(d, c->JoinDepth());
  return d + 1;
}

PlanNodePtr PlanBuilder::Scan(int tp) const {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kScan;
  node->tp = tp;
  node->tps = TpSet::Singleton(tp);
  node->cardinality = estimator_->Cardinality(node->tps);
  node->op_cost = 0;
  node->total_cost = 0;
  return node;
}

PlanNodePtr PlanBuilder::Join(JoinMethod method, VarId join_var,
                              std::vector<PlanNodePtr> children) const {
  PARQO_CHECK(children.size() >= 2);
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kJoin;
  node->method = method;
  node->join_var = join_var;

  std::vector<double> input_cards;
  input_cards.reserve(children.size());
  double max_child_cost = 0;
  for (const PlanNodePtr& c : children) {
    node->tps |= c->tps;
    input_cards.push_back(c->cardinality);
    max_child_cost = std::max(max_child_cost, c->total_cost);
  }
  node->cardinality = estimator_->Cardinality(node->tps);
  node->op_cost =
      cost_model_.JoinOpCost(method, input_cards, node->cardinality);
  node->total_cost = max_child_cost + node->op_cost;  // Eq. 3
  node->children = std::move(children);
  return node;
}

PlanNodePtr PlanBuilder::LocalJoinAll(TpSet sq) const {
  PARQO_CHECK(sq.Count() >= 2);
  std::vector<PlanNodePtr> scans;
  scans.reserve(sq.Count());
  for (int tp : sq) scans.push_back(Scan(tp));
  return Join(JoinMethod::kLocal, kInvalidVarId, std::move(scans));
}

const PlanCandidate* PlanBuilder::ScanIn(Arena& arena, int tp) const {
  PlanCandidate* node = arena.New<PlanCandidate>();
  node->kind = PlanNode::Kind::kScan;
  node->tp = tp;
  node->tps = TpSet::Singleton(tp);
  node->cardinality = estimator_->Cardinality(node->tps);
  return node;
}

const PlanCandidate* PlanBuilder::JoinIn(
    Arena& arena, JoinMethod method, VarId join_var,
    std::span<const PlanCandidate* const> children) const {
  PARQO_CHECK(children.size() >= 2);
  PARQO_DCHECK(children.size() <= TpSet::kMaxSize);
  PlanCandidate* node = arena.New<PlanCandidate>();
  node->kind = PlanNode::Kind::kJoin;
  node->method = method;
  node->join_var = join_var;
  node->num_children = static_cast<std::uint32_t>(children.size());
  const PlanCandidate** dst = node->inline_children;
  if (children.size() > PlanCandidate::kInlineChildren) {
    dst = arena.NewArray<const PlanCandidate*>(children.size());
    node->overflow_children = dst;
  }

  // Identical math to Join() above; input cardinalities go through a
  // stack buffer (k <= 64) instead of a heap vector.
  double input_cards[TpSet::kMaxSize];
  double max_child_cost = 0;
  for (std::size_t i = 0; i < children.size(); ++i) {
    const PlanCandidate* c = children[i];
    node->tps |= c->tps;
    input_cards[i] = c->cardinality;
    max_child_cost = std::max(max_child_cost, c->total_cost);
    dst[i] = c;
  }
  node->cardinality = estimator_->Cardinality(node->tps);
  node->op_cost = cost_model_.JoinOpCost(
      method, std::span<const double>(input_cards, children.size()),
      node->cardinality);
  node->total_cost = max_child_cost + node->op_cost;  // Eq. 3
  return node;
}

const PlanCandidate* PlanBuilder::LocalJoinAllIn(Arena& arena,
                                                 TpSet sq) const {
  PARQO_CHECK(sq.Count() >= 2);
  const PlanCandidate* scans[TpSet::kMaxSize];
  int n = 0;
  for (int tp : sq) scans[n++] = ScanIn(arena, tp);
  return JoinIn(arena, JoinMethod::kLocal, kInvalidVarId,
                std::span<const PlanCandidate* const>(scans, n));
}

PlanNodePtr MaterializePlan(const PlanCandidate& candidate) {
  auto node = std::make_shared<PlanNode>();
  node->kind = candidate.kind;
  node->tps = candidate.tps;
  node->tp = candidate.tp;
  node->method = candidate.method;
  node->join_var = candidate.join_var;
  node->cardinality = candidate.cardinality;
  node->op_cost = candidate.op_cost;
  node->total_cost = candidate.total_cost;
  node->children.reserve(candidate.num_children);
  for (const PlanCandidate* child : candidate.children()) {
    node->children.push_back(MaterializePlan(*child));
  }
  return node;
}

namespace {

char MethodLetter(JoinMethod m) {
  switch (m) {
    case JoinMethod::kLocal: return 'L';
    case JoinMethod::kBroadcast: return 'B';
    case JoinMethod::kRepartition: return 'R';
  }
  return '?';
}

void Render(const PlanNode& node, const JoinGraph& jg, int indent,
            std::string* out) {
  out->append(indent * 2, ' ');
  if (node.kind == PlanNode::Kind::kScan) {
    // Appends, not chained operator+: GCC 12 -Wrestrict false positive
    // (PR105651) under -O2.
    *out += "Scan tp";
    *out += std::to_string(node.tp);
    *out += " [";
    *out += jg.pattern(node.tp).ToString();
    *out += "]";
  } else {
    *out += "Join";
    *out += MethodLetter(node.method);
    if (node.join_var != kInvalidVarId) {
      *out += " on ?";
      *out += jg.var_name(node.join_var);
    }
    *out += " ";
    *out += node.tps.ToString();
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  (card=%.3g, op=%.3g, total=%.3g)\n",
                node.cardinality, node.op_cost, node.total_cost);
  *out += buf;
  for (const PlanNodePtr& c : node.children) {
    Render(*c, jg, indent + 1, out);
  }
}

}  // namespace

std::string PlanToString(const PlanNode& plan, const JoinGraph& jg) {
  std::string out;
  Render(plan, jg, 0, &out);
  return out;
}

std::string PlanToCompactString(const PlanNode& plan) {
  if (plan.kind == PlanNode::Kind::kScan) {
    return "tp" + std::to_string(plan.tp);
  }
  std::string out = "(";
  for (std::size_t i = 0; i < plan.children.size(); ++i) {
    if (i > 0) {
      out += " *";
      out += MethodLetter(plan.method);
      out += " ";
    }
    out += PlanToCompactString(*plan.children[i]);
  }
  out += ")";
  return out;
}

}  // namespace parqo
