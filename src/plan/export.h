// Plan serialization: Graphviz DOT for papers/docs and a line-oriented
// JSON for tooling. Both are lossless views of the plan tree including
// the estimator's cardinalities and the Eq. 3/4 cost breakdown.

#ifndef PARQO_PLAN_EXPORT_H_
#define PARQO_PLAN_EXPORT_H_

#include <string>

#include "plan/plan.h"
#include "query/join_graph.h"

namespace parqo {

/// Graphviz: one box per operator, labeled with the join method, join
/// variable, covered patterns, and estimated cardinality/cost.
std::string PlanToDot(const PlanNode& plan, const JoinGraph& jg);

/// JSON object: {"kind": "scan"|"join", "method": ..., "var": ...,
/// "tps": [...], "cardinality": ..., "opCost": ..., "totalCost": ...,
/// "children": [...]}.
std::string PlanToJson(const PlanNode& plan, const JoinGraph& jg);

}  // namespace parqo

#endif  // PARQO_PLAN_EXPORT_H_
