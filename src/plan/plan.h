// Physical query plans (Section II-D): labeled bushy trees whose leaves
// scan the bindings of one triple pattern and whose inner nodes are k-way
// (k >= 2) join operators labeled with a join algorithm. Plans are
// immutable and shared: the memo table hands the same subplan to every
// parent that uses it, so nodes are reference-counted and children are
// const.

#ifndef PARQO_PLAN_PLAN_H_
#define PARQO_PLAN_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/tp_set.h"
#include "cost/cost_model.h"
#include "query/join_graph.h"
#include "stats/estimator.h"

namespace parqo {

struct PlanNode;
using PlanNodePtr = std::shared_ptr<const PlanNode>;

struct PlanNode {
  enum class Kind { kScan, kJoin };

  Kind kind = Kind::kScan;
  /// The triple patterns this subtree covers.
  TpSet tps;

  // --- kScan ---
  int tp = -1;  ///< Pattern index.

  // --- kJoin ---
  JoinMethod method = JoinMethod::kLocal;
  /// The connected multi-division's join variable; kInvalidVarId for local
  /// joins, which join whole local subqueries on all shared variables.
  VarId join_var = kInvalidVarId;
  std::vector<PlanNodePtr> children;

  /// Estimated output cardinality of this subtree.
  double cardinality = 0;
  /// Cost of this operator alone (Eq. 4); 0 for scans.
  double op_cost = 0;
  /// Recursive plan cost (Eq. 3).
  double total_cost = 0;

  int NumJoinOps() const;
  /// Height counting join operators only (a scan has depth 0). The MSC
  /// baseline minimizes this quantity ("flat plans").
  int JoinDepth() const;
};

/// Creates plan nodes with costs and cardinalities filled in. Holds the
/// estimator and cost model; all optimizers in one run share one builder so
/// plan costs are directly comparable.
class PlanBuilder {
 public:
  PlanBuilder(const CardinalityEstimator& estimator, CostModel cost_model)
      : estimator_(&estimator), cost_model_(cost_model) {}

  const CostModel& cost_model() const { return cost_model_; }
  const CardinalityEstimator& estimator() const { return *estimator_; }

  PlanNodePtr Scan(int tp) const;

  /// A k-way join of `children` using `method` on `join_var`.
  PlanNodePtr Join(JoinMethod method, VarId join_var,
                   std::vector<PlanNodePtr> children) const;

  /// The "local join plan" of Algorithm 1 line 10: all patterns of `sq`
  /// scanned and joined by one local join operator.
  PlanNodePtr LocalJoinAll(TpSet sq) const;

 private:
  const CardinalityEstimator* estimator_;
  CostModel cost_model_;
};

/// Multi-line ASCII rendering, e.g. for EXPERIMENTS.md and debugging.
std::string PlanToString(const PlanNode& plan, const JoinGraph& jg);
/// One-line rendering: (tp1 JOIN_B (tp2 JOIN_L tp3)).
std::string PlanToCompactString(const PlanNode& plan);

}  // namespace parqo

#endif  // PARQO_PLAN_PLAN_H_
