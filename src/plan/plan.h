// Physical query plans (Section II-D): labeled bushy trees whose leaves
// scan the bindings of one triple pattern and whose inner nodes are k-way
// (k >= 2) join operators labeled with a join algorithm. Plans are
// immutable and shared: the memo table hands the same subplan to every
// parent that uses it, so nodes are reference-counted and children are
// const.

#ifndef PARQO_PLAN_PLAN_H_
#define PARQO_PLAN_PLAN_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/arena.h"
#include "common/tp_set.h"
#include "cost/cost_model.h"
#include "query/join_graph.h"
#include "stats/estimator.h"

namespace parqo {

struct PlanNode;
using PlanNodePtr = std::shared_ptr<const PlanNode>;

struct PlanNode {
  enum class Kind { kScan, kJoin };

  Kind kind = Kind::kScan;
  /// The triple patterns this subtree covers.
  TpSet tps;

  // --- kScan ---
  int tp = -1;  ///< Pattern index.

  // --- kJoin ---
  JoinMethod method = JoinMethod::kLocal;
  /// The connected multi-division's join variable; kInvalidVarId for local
  /// joins, which join whole local subqueries on all shared variables.
  VarId join_var = kInvalidVarId;
  std::vector<PlanNodePtr> children;

  /// Estimated output cardinality of this subtree.
  double cardinality = 0;
  /// Cost of this operator alone (Eq. 4); 0 for scans.
  double op_cost = 0;
  /// Recursive plan cost (Eq. 3).
  double total_cost = 0;

  int NumJoinOps() const;
  /// Height counting join operators only (a scan has depth 0). The MSC
  /// baseline minimizes this quantity ("flat plans").
  int JoinDepth() const;
};

/// A candidate plan node during enumeration: the arena-allocated twin of
/// PlanNode. The TD-CMD family and DP-Bushy build millions of these per
/// dense query and discard all but one, so a candidate must cost a
/// pointer bump, not a make_shared plus refcount churn: nodes live in a
/// per-worker Arena, children are raw pointers stored inline for the
/// common k <= 4 joins (overflowing to an arena array above that), and
/// nothing is ever freed individually. Only the winning candidate is
/// deep-copied into the shared PlanNode representation (MaterializePlan)
/// when the run finishes, so everything downstream of the optimizer —
/// executor, validator, export, tools — sees PlanNodePtr exactly as
/// before. Lifetime rules are in DESIGN.md §12.
struct PlanCandidate {
  static constexpr std::uint32_t kInlineChildren = 4;

  PlanNode::Kind kind = PlanNode::Kind::kScan;
  TpSet tps;
  int tp = -1;  ///< Pattern index (kScan).

  // --- kJoin ---
  JoinMethod method = JoinMethod::kLocal;
  VarId join_var = kInvalidVarId;
  std::uint32_t num_children = 0;
  union {
    const PlanCandidate* inline_children[kInlineChildren];
    const PlanCandidate* const* overflow_children;
  };

  double cardinality = 0;
  double op_cost = 0;
  double total_cost = 0;

  std::span<const PlanCandidate* const> children() const {
    return {num_children <= kInlineChildren ? inline_children
                                            : overflow_children,
            num_children};
  }
};
static_assert(std::is_trivially_destructible_v<PlanCandidate>,
              "PlanCandidate must be arena-allocatable");

/// Deep-copies the winning candidate into the immutable shared PlanNode
/// representation. Subplans the memo shared between parents are copied
/// per use — the result is a tree with identical costs, cardinalities,
/// and shape (winning plans are small; the sharing only mattered for the
/// millions of losers, which the arena makes free).
PlanNodePtr MaterializePlan(const PlanCandidate& candidate);

/// Creates plan nodes with costs and cardinalities filled in. Holds the
/// estimator and cost model; all optimizers in one run share one builder so
/// plan costs are directly comparable.
class PlanBuilder {
 public:
  PlanBuilder(const CardinalityEstimator& estimator, CostModel cost_model)
      : estimator_(&estimator), cost_model_(cost_model) {}

  const CostModel& cost_model() const { return cost_model_; }
  const CardinalityEstimator& estimator() const { return *estimator_; }

  PlanNodePtr Scan(int tp) const;

  /// A k-way join of `children` using `method` on `join_var`.
  PlanNodePtr Join(JoinMethod method, VarId join_var,
                   std::vector<PlanNodePtr> children) const;

  /// The "local join plan" of Algorithm 1 line 10: all patterns of `sq`
  /// scanned and joined by one local join operator.
  PlanNodePtr LocalJoinAll(TpSet sq) const;

  //===------------------------------------------------------------------===//
  // Arena-backed candidate construction (the enumeration hot path).
  // Identical cost/cardinality math to the shared_ptr methods above —
  // the plan-identity sweep in tests/plan_identity_test.cc holds the two
  // representations bit-identical — but a candidate is one pointer bump
  // in `arena` and is never individually freed.
  //===------------------------------------------------------------------===//

  const PlanCandidate* ScanIn(Arena& arena, int tp) const;

  const PlanCandidate* JoinIn(
      Arena& arena, JoinMethod method, VarId join_var,
      std::span<const PlanCandidate* const> children) const;

  const PlanCandidate* LocalJoinAllIn(Arena& arena, TpSet sq) const;

 private:
  const CardinalityEstimator* estimator_;
  CostModel cost_model_;
};

/// Multi-line ASCII rendering, e.g. for EXPERIMENTS.md and debugging.
std::string PlanToString(const PlanNode& plan, const JoinGraph& jg);
/// One-line rendering: (tp1 JOIN_B (tp2 JOIN_L tp3)).
std::string PlanToCompactString(const PlanNode& plan);

}  // namespace parqo

#endif  // PARQO_PLAN_PLAN_H_
