// Structural plan validation: used by tests (including property tests over
// random queries) and by debug builds of the optimizers to guarantee that
// every emitted plan is a well-formed, Cartesian-product-free bushy plan.

#ifndef PARQO_PLAN_VALIDATE_H_
#define PARQO_PLAN_VALIDATE_H_

#include "common/status.h"
#include "partition/local_query_index.h"
#include "plan/plan.h"
#include "query/join_graph.h"

namespace parqo {

/// Checks that `plan` is a valid physical plan for the whole query of `jg`:
///  - leaves scan existing patterns; inner nodes have >= 2 children;
///  - children cover disjoint pattern sets whose union is the node's set;
///  - every subtree's pattern set is connected in the join graph;
///  - non-local joins have a join variable shared by all children
///    (no Cartesian products, Definition 3 condition 3);
///  - local joins cover subqueries that `local_index` confirms are local
///    (skipped when local_index == nullptr).
Status ValidatePlan(const PlanNode& plan, const JoinGraph& jg,
                    const LocalQueryIndex* local_index);

}  // namespace parqo

#endif  // PARQO_PLAN_VALIDATE_H_
