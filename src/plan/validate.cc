#include "plan/validate.h"

namespace parqo {
namespace {

Status Fail(const std::string& what, const PlanNode& node) {
  return Status::Internal("invalid plan: " + what + " at node covering " +
                          node.tps.ToString());
}

Status ValidateNode(const PlanNode& node, const JoinGraph& jg,
                    const LocalQueryIndex* local_index) {
  if (node.kind == PlanNode::Kind::kScan) {
    if (node.tp < 0 || node.tp >= jg.num_tps()) {
      return Fail("scan of nonexistent pattern", node);
    }
    if (node.tps != TpSet::Singleton(node.tp)) {
      return Fail("scan tps mismatch", node);
    }
    if (!node.children.empty()) return Fail("scan with children", node);
    return Status::Ok();
  }

  if (node.children.size() < 2) {
    return Fail("join with fewer than 2 inputs", node);
  }
  TpSet seen;
  for (const PlanNodePtr& c : node.children) {
    if (c->tps.Intersects(seen)) {
      return Fail("children overlap", node);
    }
    seen |= c->tps;
  }
  if (seen != node.tps) return Fail("children do not cover node", node);
  if (!jg.IsConnected(node.tps)) {
    return Fail("disconnected subquery (Cartesian product)", node);
  }

  if (node.method == JoinMethod::kLocal) {
    if (local_index != nullptr && !local_index->IsLocal(node.tps)) {
      return Fail("local join of a non-local subquery", node);
    }
  } else {
    if (node.join_var == kInvalidVarId) {
      return Fail("distributed join without a join variable", node);
    }
    TpSet ntp = jg.Ntp(node.join_var);
    for (const PlanNodePtr& c : node.children) {
      if (!c->tps.Intersects(ntp)) {
        return Fail("child does not contain the join variable "
                    "(Definition 3 condition 3)",
                    node);
      }
    }
  }

  for (const PlanNodePtr& c : node.children) {
    PARQO_RETURN_IF_ERROR(ValidateNode(*c, jg, local_index));
  }
  return Status::Ok();
}

}  // namespace

Status ValidatePlan(const PlanNode& plan, const JoinGraph& jg,
                    const LocalQueryIndex* local_index) {
  if (plan.tps != jg.AllTps()) {
    return Status::Internal("plan does not cover the whole query: " +
                            plan.tps.ToString());
  }
  return ValidateNode(plan, jg, local_index);
}

}  // namespace parqo
