#include "plan/export.h"

#include <cstdio>

namespace parqo {
namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string NodeLabel(const PlanNode& node, const JoinGraph& jg) {
  char buf[160];
  if (node.kind == PlanNode::Kind::kScan) {
    std::snprintf(buf, sizeof(buf), "scan tp%d\\ncard=%.3g", node.tp,
                  node.cardinality);
    return buf;
  }
  std::string method = ToString(node.method);
  std::string var = node.join_var == kInvalidVarId
                        ? ""
                        : "\\non ?" + jg.var_name(node.join_var);
  std::snprintf(buf, sizeof(buf),
                "%d-way %s join%s\\ncard=%.3g cost=%.3g",
                static_cast<int>(node.children.size()), method.c_str(),
                var.c_str(), node.cardinality, node.total_cost);
  return buf;
}

int EmitDot(const PlanNode& node, const JoinGraph& jg, int* next_id,
            std::string* out) {
  int id = (*next_id)++;
  const char* shape =
      node.kind == PlanNode::Kind::kScan ? "box" : "ellipse";
  const char* color = "black";
  if (node.kind == PlanNode::Kind::kJoin) {
    switch (node.method) {
      case JoinMethod::kLocal: color = "darkgreen"; break;
      case JoinMethod::kBroadcast: color = "blue"; break;
      case JoinMethod::kRepartition: color = "red"; break;
    }
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  n%d [shape=%s, color=%s, label=\"%s\"];\n", id, shape,
                color, NodeLabel(node, jg).c_str());
  *out += buf;
  for (const PlanNodePtr& c : node.children) {
    int child = EmitDot(*c, jg, next_id, out);
    std::snprintf(buf, sizeof(buf), "  n%d -> n%d;\n", id, child);
    *out += buf;
  }
  return id;
}

void EmitJson(const PlanNode& node, const JoinGraph& jg,
              std::string* out) {
  char buf[128];
  if (node.kind == PlanNode::Kind::kScan) {
    *out += "{\"kind\":\"scan\",\"tp\":" + std::to_string(node.tp);
    *out += ",\"pattern\":\"" +
            EscapeJson(jg.pattern(node.tp).ToString()) + "\"";
  } else {
    *out += "{\"kind\":\"join\",\"method\":\"" + ToString(node.method) +
            "\"";
    if (node.join_var != kInvalidVarId) {
      *out += ",\"var\":\"" + EscapeJson(jg.var_name(node.join_var)) +
              "\"";
    }
  }
  *out += ",\"tps\":[";
  bool first = true;
  for (int tp : node.tps) {
    if (!first) *out += ",";
    *out += std::to_string(tp);
    first = false;
  }
  std::snprintf(buf, sizeof(buf),
                "],\"cardinality\":%.17g,\"opCost\":%.17g,"
                "\"totalCost\":%.17g",
                node.cardinality, node.op_cost, node.total_cost);
  *out += buf;
  if (!node.children.empty()) {
    *out += ",\"children\":[";
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      if (i > 0) *out += ",";
      EmitJson(*node.children[i], jg, out);
    }
    *out += "]";
  }
  *out += "}";
}

}  // namespace

std::string PlanToDot(const PlanNode& plan, const JoinGraph& jg) {
  std::string out = "digraph plan {\n  rankdir=BT;\n";
  int next_id = 0;
  EmitDot(plan, jg, &next_id, &out);
  out += "}\n";
  return out;
}

std::string PlanToJson(const PlanNode& plan, const JoinGraph& jg) {
  std::string out;
  EmitJson(plan, jg, &out);
  return out;
}

}  // namespace parqo
