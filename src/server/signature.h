// BGP canonicalization for the serving layer's plan cache (DESIGN.md
// section 14). Two basic graph patterns that differ only by variable
// spelling, triple-pattern order, or the *values* of subject/object
// constants must map to one signature, because they share an optimal plan
// shape: the optimizer sees only the join structure, the predicates, and
// the statistics. The signature is therefore a complete canonical
// rendering of the BGP — not a hash — with
//
//   - variables renamed to ?x0, ?x1, ... in first-occurrence order over
//     the canonical pattern list (the order JoinGraph interns VarIds in,
//     so canonical ?xk is VarId k of a JoinGraph over `patterns`),
//   - triple patterns sorted into a canonical order,
//   - subject/object constants parameterized to $0, $1, ... by equality
//     class (two positions holding the SAME constant share a placeholder;
//     the values are externalized into `constants`), and
//   - predicate constants kept literal: the predicate is the workload's
//     discriminator (WatDiv templates differ chiefly in predicates), and
//     a cache key that erased it would reuse one template's plan for a
//     structurally similar query over entirely different relations.
//
// Equal signatures imply isomorphic BGPs, so a cache keyed on the
// signature can never serve a plan for a structurally different query.
//
// Canonical ranks come from Weisfeiler–Lehman color refinement over the
// query's variables and constant classes, with bounded individualization
// to break residual ties (symmetric queries). Determinism is load-bearing:
// this file must not iterate any unordered container (the same class of
// bug as the PR 3 HGR hash-order fix; tools/parqo_lint.py enforces it
// with the unordered-in-signature rule).

#ifndef PARQO_SERVER_SIGNATURE_H_
#define PARQO_SERVER_SIGNATURE_H_

#include <string>
#include <vector>

#include "rdf/term.h"
#include "sparql/query.h"

namespace parqo {

/// The canonical form of a basic graph pattern.
struct CanonicalBgp {
  /// Canonical rendering, e.g. "?x0 <p> $0 . ?x0 <q> ?x1". Cache key
  /// material (combined with the partitioning scheme by the plan cache).
  std::string signature;

  /// The input patterns in canonical order with variables renamed to the
  /// canonical names and constants left in place. A JoinGraph built from
  /// this list assigns identical VarIds for every query with the same
  /// signature, which is what lets a cached plan (whose scan indexes and
  /// join_var ids live in this space) execute any instance directly.
  std::vector<TriplePattern> patterns;

  /// Parameter values by placeholder index: constants[k] is this query's
  /// value for the signature's $k.
  std::vector<Term> constants;

  /// pattern_perm[i] is the original index of canonical pattern i.
  std::vector<int> pattern_perm;

  /// var_names[k] is the original spelling of canonical variable ?xk —
  /// equivalently of VarId k in a JoinGraph built over `patterns`, so a
  /// result BindingTable's ColumnOf(k) is var_names[k]'s column.
  std::vector<std::string> var_names;

  /// True when tie-breaking completed within budget, making the form
  /// provably invariant under renaming and reordering. False only for
  /// adversarially symmetric queries past the individualization budget;
  /// the form is still deterministic for byte-identical inputs.
  bool exact = true;
};

/// Canonicalizes `patterns` (at most TpSet::kMaxSize entries; callers
/// validate). Deterministic; invariant under variable renaming, pattern
/// permutation, and constant-value substitution while `exact` holds.
CanonicalBgp CanonicalizeBgp(const std::vector<TriplePattern>& patterns);

}  // namespace parqo

#endif  // PARQO_SERVER_SIGNATURE_H_
