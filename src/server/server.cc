#include "server/server.h"

#include <utility>

#include "common/check.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/tp_set.h"
#include "query/join_graph.h"

namespace parqo {

QueryServer::QueryServer(const RdfGraph& graph, const Cluster& cluster,
                         const Partitioner& partitioner, ServerConfig config)
    : graph_(graph),
      cluster_(cluster),
      partitioner_(partitioner),
      config_(std::move(config)),
      stats_(StatsFromData(graph)),
      health_(config_.enable_health
                  ? std::make_unique<NodeHealthRegistry>(
                        cluster.num_nodes(), config_.health)
                  : nullptr),
      retry_budget_(config_.retry_budget > 0
                        ? std::make_unique<RetryBudget>(
                              config_.retry_budget,
                              config_.retry_budget_refill_per_second)
                        : nullptr),
      cache_(config_.cache_shards, config_.cache_shard_capacity),
      admission_(AdmissionConfig{config_.max_in_flight,
                                 config_.admission_queue,
                                 config_.admission_queue_wait_seconds,
                                 config_.shed_p99_seconds},
                 health_.get()),
      optimizer_(config_.num_threads) {}

ServeResult QueryServer::Serve(const std::vector<TriplePattern>& patterns,
                               double deadline_seconds) {
  static MetricCounter& m_queries =
      MetricsRegistry::Global().counter("server.queries");
  static MetricCounter& m_overloaded =
      MetricsRegistry::Global().counter("server.overloaded");
  static MetricHistogram& m_latency =
      MetricsRegistry::Global().histogram("server.latency_seconds");

  m_queries.Add();
  Stopwatch total;

  AdmissionTicket ticket(admission_);
  if (!ticket) {
    m_overloaded.Add();
    ServeResult out;
    out.status = Status::Overloaded(
        "server at in-flight capacity; back off and re-submit");
    out.total_seconds = total.ElapsedSeconds();
    return out;
  }

  ServeResult out = ServeAdmitted(patterns, deadline_seconds);
  out.total_seconds = total.ElapsedSeconds();
  m_latency.Observe(out.total_seconds);
  return out;
}

ServeResult QueryServer::ServeAdmitted(
    const std::vector<TriplePattern>& patterns, double deadline_seconds) {
  static MetricCounter& m_degraded =
      MetricsRegistry::Global().counter("server.degraded_plans");
  static MetricCounter& m_reoptimized =
      MetricsRegistry::Global().counter("server.reoptimized_hits");

  ServeResult out;
  if (patterns.empty()) {
    out.status = Status::InvalidArgument("empty basic graph pattern");
    return out;
  }
  if (static_cast<int>(patterns.size()) > TpSet::kMaxSize) {
    out.status = Status::InvalidArgument("query exceeds TpSet::kMaxSize");
    return out;
  }

  CanonicalBgp canon = CanonicalizeBgp(patterns);
  out.signature = canon.signature;
  out.exact_signature = canon.exact;
  out.var_names = canon.var_names;
  const std::string key =
      PlanCache::MakeKey(canon.signature, partitioner_.name());

  std::optional<CachedPlan> hit = cache_.Lookup(key);
  out.cache_hit = hit.has_value();
  bool reoptimizing_degraded =
      hit && hit->degraded && config_.reoptimize_degraded_hits;

  CachedPlan entry;
  if (hit && !reoptimizing_degraded) {
    entry = std::move(*hit);
  } else {
    // Miss (or degraded hit worth upgrading): optimize in canonical
    // space under the per-query deadline. The canonical pattern order
    // fixes the JoinGraph's tp indexes and VarIds, so the plan cached
    // here executes directly for every future query with this signature.
    PreparedQuery prepared(canon.patterns, partitioner_, stats_);
    OptimizeOptions options = config_.options;
    double budget = deadline_seconds < 0 ? config_.query_deadline_seconds
                                         : deadline_seconds;
    options.deadline = budget > 0 ? Deadline::AfterSeconds(budget)
                                  : Deadline::Infinite();
    if (options.num_threads > 1 && options.thread_pool == nullptr) {
      options.thread_pool = &optimizer_.pool();
    }
    OptimizeResult opt =
        Optimize(config_.algorithm, prepared.inputs(), options);
    out.optimize_seconds = opt.seconds;
    if (!opt.plan) {
      out.status = Status::DeadlineExceeded(
          "optimizer produced no plan within its budget");
      return out;
    }
    entry.plan = opt.plan;
    entry.plan_cost = opt.plan->total_cost;
    entry.algorithm_used = opt.algorithm_used;
    entry.degraded =
        opt.abort_cause == AbortCause::kDeadline || opt.fell_back_to_msc;
    if (entry.degraded) m_degraded.Add();
    if (reoptimizing_degraded) {
      out.reoptimized = true;
      m_reoptimized.Add();
      if (entry.degraded) {
        // The upgrade attempt degraded too; keep the existing entry's
        // recency rather than churning the slot.
        entry = std::move(*hit);
      }
    }
    cache_.Insert(key, entry);
  }

  out.degraded = entry.degraded;
  out.plan = entry.plan;
  out.plan_cost = entry.plan_cost;
  out.algorithm_used = entry.algorithm_used;

  // Execute in canonical space. The JoinGraph here is cheap (no stats,
  // no partitioning analysis) and assigns the same VarIds the plan was
  // optimized against, because canonical order is a function of the
  // signature alone.
  JoinGraph jg(canon.patterns);
  RetryPolicy retry = config_.retry;
  retry.budget = retry_budget_.get();  // null = per-query policy only
  Executor executor(cluster_, jg, config_.options.cost_params,
                    config_.parallel_exec_nodes, retry, config_.engine,
                    health_.get());
  Stopwatch exec_watch;
  Result<BindingTable> rows = executor.Execute(*entry.plan, &out.exec_metrics);
  out.execute_seconds = exec_watch.ElapsedSeconds();
  // Feed the health registry failed-or-not: failures already reached it
  // mid-query (breakers trip on detection), successes carry the latency
  // samples, and every session's wall time updates the admission p99.
  if (health_ != nullptr) health_->RecordSession(out.exec_metrics);
  if (retry_budget_ != nullptr && MetricsEnabled()) {
    MetricsRegistry::Global()
        .gauge("server.retry_budget.remaining")
        .Set(static_cast<double>(retry_budget_->remaining()));
  }
  if (!rows.ok()) {
    out.status = rows.status();
    return out;
  }
  out.rows = std::move(*rows);
  out.status = Status::Ok();
  return out;
}

std::vector<ServeResult> QueryServer::ServeConcurrent(
    const std::vector<std::vector<TriplePattern>>& stream, int clients) {
  std::vector<ServeResult> out(stream.size());
  ServeConcurrent(stream, clients,
                  [&](std::size_t i, ServeResult r) { out[i] = std::move(r); });
  return out;
}

void QueryServer::ServeConcurrent(
    const std::vector<std::vector<TriplePattern>>& stream, int clients,
    const std::function<void(std::size_t, ServeResult)>& consume) {
  PARQO_CHECK(clients >= 1);
  optimizer_.pool().ParallelFor(
      static_cast<int>(stream.size()),
      [&](int i) { consume(static_cast<std::size_t>(i), Serve(stream[i])); },
      clients);
}

}  // namespace parqo
