// The serving layer (DESIGN.md section 14): a session pipeline that
// drives concurrent clients through canonicalize -> plan-cache lookup ->
// (miss) parallel optimize -> execute on the simulated cluster. This is
// the multi-user SPARQL endpoint shape the paper's engines assume
// (Partout, PHD-Store): a stream of templated queries whose optimization
// cost must be paid once per template, not once per request.
//
// Pipeline per request:
//
//   1. admission  - bounded in-flight slots; at capacity the request is
//                   rejected with StatusCode::kOverloaded before any work.
//   2. signature  - CanonicalizeBgp maps the BGP to its canonical form
//                   (server/signature.h); execution happens in canonical
//                   space and ServeResult::var_names maps back.
//   3. cache      - sharded LRU keyed on signature x partitioning scheme,
//                   copy-out semantics (server/plan_cache.h).
//   4. optimize   - on a miss: PreparedQuery + Optimize() under the
//                   per-query deadline (OptimizeOptions::deadline).
//                   Deadline-degraded plans are cached with the degraded
//                   flag; a later unhurried hit re-optimizes and upgrades
//                   the entry rather than being poisoned by it.
//   5. execute    - Executor on the shared cluster; the PR 4 fault layer
//                   (FaultScope) runs underneath unchanged, so recovery
//                   happens while serving and an unrecoverable query
//                   returns typed kUnavailable, never a wrong result.
//
// Self-healing (DESIGN.md section 16): the server owns a
// NodeHealthRegistry (exec/health.h) fed every session's ExecMetrics.
// Its circuit breakers make the executor route around known-sick nodes
// BEFORE dispatch, its latency quantiles drive hedged straggler
// re-execution, its session p99 drives admission load shedding, and an
// optional cluster-wide RetryBudget caps the TOTAL retries concurrent
// sessions may spend (exhaustion degrades to typed kUnavailable instead
// of a synchronized backoff storm).
//
// Thread safety: Serve() is safe to call from any number of threads.
// Shared state is the sharded cache, the admission front door, the
// health registry, and the metrics registry; everything per-request
// lives on the session's stack. Every lock a request can touch
// (admission queue at LockRank::kAdmission, cache shards at
// kCacheShard, health at kHealth, pool/metrics leaves below them) sits
// in the static hierarchy of common/thread_annotations.h.

#ifndef PARQO_SERVER_SERVER_H_
#define PARQO_SERVER_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "exec/binding_table.h"
#include "exec/cluster.h"
#include "exec/executor.h"
#include "exec/health.h"
#include "optimizer/parallel_optimizer.h"
#include "optimizer/prepared_query.h"
#include "rdf/graph.h"
#include "server/admission.h"
#include "server/plan_cache.h"
#include "server/signature.h"
#include "sparql/query.h"

namespace parqo {

struct ServerConfig {
  Algorithm algorithm = Algorithm::kTdAuto;
  /// Base optimizer options; the per-query deadline below overwrites
  /// `options.deadline` on every miss.
  OptimizeOptions options;
  /// Per-query optimization deadline in seconds; <= 0 serves without one.
  double query_deadline_seconds = 0;
  /// In-flight capacity for admission control.
  int max_in_flight = 64;
  int cache_shards = 8;
  std::size_t cache_shard_capacity = 64;
  /// A hit on a degraded entry re-optimizes (so a deadline casualty never
  /// poisons future requests that have budget) and upgrades the entry
  /// when the re-optimization completes cleanly.
  bool reoptimize_degraded_hits = true;
  /// Serving pool size (ServeConcurrent workers and intra-query
  /// optimizer threads); <= 0 selects hardware_concurrency.
  int num_threads = 0;
  /// Executor knobs; `retry` bounds fault recovery under a FaultScope.
  bool parallel_exec_nodes = false;
  ExecEngine engine = ExecEngine::kBatch;
  RetryPolicy retry;

  /// Self-healing serving (DESIGN.md section 16). With `enable_health`
  /// the server owns a NodeHealthRegistry: sessions feed it, breakers
  /// quarantine sick nodes, stragglers are hedged. Off restores the
  /// memoryless pre-health behavior (and the un-instrumented executor
  /// fast path when no FaultScope is active).
  bool enable_health = true;
  HealthConfig health;
  /// Bounded admission wait-queue depth (0 = immediate rejection) and
  /// the longest a queued request may wait for a slot.
  int admission_queue = 16;
  double admission_queue_wait_seconds = 0.02;
  /// Load shedding threshold on the registry's measured session p99;
  /// 0 disables shedding.
  double shed_p99_seconds = 0;
  /// Cluster-wide retry budget: total retry attempts across ALL
  /// concurrent sessions (0 = no shared budget, per-query policy only).
  /// `retry.budget` is overwritten to point at the server-owned bucket.
  std::uint64_t retry_budget = 0;
  double retry_budget_refill_per_second = 0;
};

/// Everything one served request produced.
struct ServeResult {
  /// kOverloaded (admission), kInvalidArgument (empty/oversized BGP),
  /// kDeadlineExceeded (optimizer timeout with no plan), kUnavailable
  /// (execution faults exhausted retries) — or OK.
  Status status;

  bool cache_hit = false;       ///< Plan came from the cache.
  bool degraded = false;        ///< The plan used was deadline-degraded.
  bool reoptimized = false;     ///< A degraded hit was re-optimized.
  bool exact_signature = true;  ///< CanonicalBgp::exact.

  double optimize_seconds = 0;  ///< 0 on a pure cache hit.
  double execute_seconds = 0;
  double total_seconds = 0;  ///< End-to-end, admission to result.

  double plan_cost = 0;
  Algorithm algorithm_used = Algorithm::kTdAuto;
  std::string signature;
  PlanNodePtr plan;  ///< In canonical space; shared with the cache.

  /// Deduplicated bindings over all query variables, schema'd by the
  /// canonical JoinGraph's VarIds; canonical variable "xk" corresponds to
  /// var_names[k] in the caller's spelling.
  BindingTable rows;
  std::vector<std::string> var_names;
  ExecMetrics exec_metrics;
};

class QueryServer {
 public:
  /// `graph`, `cluster`, and `partitioner` are borrowed and must outlive
  /// the server. `cluster` must have been partitioned by `partitioner` —
  /// the cache key includes partitioner.name(), which is what keeps plans
  /// coherent when the same server binary serves differently-partitioned
  /// clusters.
  QueryServer(const RdfGraph& graph, const Cluster& cluster,
              const Partitioner& partitioner, ServerConfig config);

  /// Serves one query end to end. Thread-safe. `deadline_seconds`
  /// overrides the config's per-query optimization deadline for this
  /// request: < 0 uses the config, 0 serves without a deadline, > 0 sets
  /// that budget. A request with a comfortable budget that hits a
  /// degraded cache entry is exactly the upgrade path described above.
  ServeResult Serve(const std::vector<TriplePattern>& patterns,
                    double deadline_seconds = -1);

  /// Replays `stream` with up to `clients` concurrent sessions on the
  /// serving pool (the calling thread participates). Results come back
  /// in stream order.
  std::vector<ServeResult> ServeConcurrent(
      const std::vector<std::vector<TriplePattern>>& stream, int clients);

  /// As above, but hands each result to `consume(index, result)` the
  /// moment its session finishes instead of accumulating every result
  /// table for the whole stream (large replays would otherwise hold all
  /// materialized bindings at once). `consume` runs on the serving pool,
  /// concurrently for distinct indexes, exactly once per index.
  void ServeConcurrent(
      const std::vector<std::vector<TriplePattern>>& stream, int clients,
      const std::function<void(std::size_t, ServeResult)>& consume);

  PlanCache& cache() { return cache_; }
  AdmissionController& admission() { return admission_; }
  ThreadPool& pool() { return optimizer_.pool(); }
  const ServerConfig& config() const { return config_; }
  /// Null when the matching config knob is off.
  NodeHealthRegistry* health() { return health_.get(); }
  RetryBudget* retry_budget() { return retry_budget_.get(); }

 private:
  ServeResult ServeAdmitted(const std::vector<TriplePattern>& patterns,
                            double deadline_seconds);

  const RdfGraph& graph_;
  const Cluster& cluster_;
  const Partitioner& partitioner_;
  ServerConfig config_;
  StatsSource stats_;
  /// Declared before admission_: the controller borrows the registry.
  std::unique_ptr<NodeHealthRegistry> health_;
  std::unique_ptr<RetryBudget> retry_budget_;
  PlanCache cache_;
  AdmissionController admission_;
  /// Owns the serving pool; also used for batch optimization.
  ParallelOptimizer optimizer_;
};

}  // namespace parqo

#endif  // PARQO_SERVER_SERVER_H_
