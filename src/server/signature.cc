#include "server/signature.h"

#include <algorithm>
#include <array>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/tp_set.h"

namespace parqo {
namespace {

// Individualization budget: total canonical-form candidates rendered per
// query. Refinement alone separates every realistic BGP (predicates are
// strong initial colors); the search only runs on symmetric queries, and
// past the budget the form falls back to deterministic-but-not-invariant
// tie-breaking with CanonicalBgp::exact = false.
constexpr int kMaxCandidates = 128;

// One refinement node: a variable or a subject/object constant equality
// class. Predicate constants are edge labels, not nodes.
struct Node {
  bool is_var = false;
  std::string var_name;  // when is_var
  Term constant;         // representative value when !is_var
  /// (pattern index, position: 0 = subject, 1 = predicate, 2 = object).
  std::vector<std::pair<int, int>> occurrences;
};

struct TermLess {
  bool operator()(const Term& a, const Term& b) const {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.lexical < b.lexical;
  }
};

// The BGP decomposed into refinement nodes. Node ids reflect discovery
// order and are NOT canonical; only the color partition computed from the
// structure is. Every container here is ordered — hash order must never
// reach the signature (tools/parqo_lint.py: unordered-in-signature).
struct Decomposition {
  const std::vector<TriplePattern>* patterns = nullptr;
  std::vector<Node> nodes;
  /// Per pattern: node id of s/p/o, or -1 for a constant predicate.
  std::vector<std::array<int, 3>> pattern_nodes;
};

Decomposition Decompose(const std::vector<TriplePattern>& patterns) {
  Decomposition d;
  d.patterns = &patterns;
  std::map<std::string, int> var_node;
  std::map<Term, int, TermLess> const_node;
  auto node_of = [&](const PatternTerm& t, int pattern, int pos) -> int {
    int id;
    if (t.IsVar()) {
      auto [it, inserted] =
          var_node.emplace(t.var, static_cast<int>(d.nodes.size()));
      if (inserted) {
        Node n;
        n.is_var = true;
        n.var_name = t.var;
        d.nodes.push_back(std::move(n));
      }
      id = it->second;
    } else {
      auto [it, inserted] =
          const_node.emplace(t.term, static_cast<int>(d.nodes.size()));
      if (inserted) {
        Node n;
        n.is_var = false;
        n.constant = t.term;
        d.nodes.push_back(std::move(n));
      }
      id = it->second;
    }
    d.nodes[id].occurrences.emplace_back(pattern, pos);
    return id;
  };
  for (int i = 0; i < static_cast<int>(patterns.size()); ++i) {
    const TriplePattern& tp = patterns[i];
    std::array<int, 3> ids{-1, -1, -1};
    ids[0] = node_of(tp.s, i, 0);
    // A constant predicate stays a literal edge label; only predicate
    // *variables* join and therefore become nodes.
    if (tp.p.IsVar()) ids[1] = node_of(tp.p, i, 1);
    ids[2] = node_of(tp.o, i, 2);
    d.pattern_nodes.push_back(ids);
  }
  return d;
}

// Renders one pattern position under a color assignment ("V<color>" for a
// variable node, "K<color>" for a constant class, literal label for a
// constant predicate). Used during refinement only.
std::string ColorEntry(const Decomposition& d, int pattern, int pos,
                       const std::vector<int>& color) {
  int node = d.pattern_nodes[pattern][pos];
  if (node < 0) return (*d.patterns)[pattern].p.term.ToNTriples();
  return (d.nodes[node].is_var ? "V" : "K") + std::to_string(color[node]);
}

// One round of Weisfeiler–Lehman refinement: each node's new color is the
// rank of (old color, sorted multiset of its occurrence contexts). Colors
// are dense ranks, so the result depends only on the query's structure,
// never on node discovery order. Iterates until the partition stops
// refining.
std::vector<int> Refine(const Decomposition& d, std::vector<int> color) {
  const int n = static_cast<int>(d.nodes.size());
  if (n == 0) return color;
  int distinct = 0;
  {
    std::vector<int> sorted = color;
    std::sort(sorted.begin(), sorted.end());
    distinct = static_cast<int>(
        std::unique(sorted.begin(), sorted.end()) - sorted.begin());
  }
  for (int round = 0; round < n; ++round) {
    // Pattern context strings under the current coloring.
    std::vector<std::string> pkey(d.pattern_nodes.size());
    for (std::size_t p = 0; p < d.pattern_nodes.size(); ++p) {
      pkey[p] = ColorEntry(d, static_cast<int>(p), 0, color) + " " +
                ColorEntry(d, static_cast<int>(p), 1, color) + " " +
                ColorEntry(d, static_cast<int>(p), 2, color);
    }
    std::vector<std::pair<std::string, int>> sigs;
    sigs.reserve(n);
    for (int i = 0; i < n; ++i) {
      std::vector<std::string> occ;
      occ.reserve(d.nodes[i].occurrences.size());
      for (const auto& [p, pos] : d.nodes[i].occurrences) {
        occ.push_back(std::to_string(pos) + "@" + pkey[p]);
      }
      std::sort(occ.begin(), occ.end());
      std::string sig = std::to_string(color[i]);
      sig += '|';
      for (const std::string& o : occ) {
        sig += o;
        sig += ';';
      }
      sigs.emplace_back(std::move(sig), i);
    }
    std::sort(sigs.begin(), sigs.end());
    std::vector<int> next(n);
    int next_distinct = 0;
    for (std::size_t k = 0; k < sigs.size(); ++k) {
      if (k > 0 && sigs[k].first != sigs[k - 1].first) ++next_distinct;
      next[sigs[k].second] = next_distinct;
    }
    ++next_distinct;
    color = std::move(next);
    if (next_distinct == distinct || next_distinct == n) break;
    distinct = next_distinct;
  }
  return color;
}

/// Total node order for rendering: by color, ties (only possible past the
/// individualization budget) by node id. Returns per-node rank.
std::vector<int> RanksFrom(const std::vector<int>& color) {
  std::vector<int> order(color.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (color[a] != color[b]) return color[a] < color[b];
    return a < b;
  });
  std::vector<int> rank(color.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    rank[order[k]] = static_cast<int>(k);
  }
  return rank;
}

CanonicalBgp Render(const Decomposition& d, const std::vector<int>& color,
                    bool exact) {
  const auto& patterns = *d.patterns;
  std::vector<int> rank = RanksFrom(color);

  // Canonical numbering: variables and constant classes each numbered by
  // their rank order among their own kind.
  std::vector<int> var_num(d.nodes.size(), -1);
  std::vector<int> const_num(d.nodes.size(), -1);
  {
    std::vector<int> by_rank(d.nodes.size());
    for (std::size_t i = 0; i < d.nodes.size(); ++i) {
      by_rank[rank[i]] = static_cast<int>(i);
    }
    int vars = 0, consts = 0;
    for (int node : by_rank) {
      if (d.nodes[node].is_var) {
        var_num[node] = vars++;
      } else {
        const_num[node] = consts++;
      }
    }
  }

  auto render_pos = [&](int pattern, int pos) -> std::string {
    int node = d.pattern_nodes[pattern][pos];
    if (node < 0) return patterns[pattern].p.term.ToNTriples();
    if (d.nodes[node].is_var) {
      return "?x" + std::to_string(var_num[node]);
    }
    return "$" + std::to_string(const_num[node]);
  };

  std::vector<std::pair<std::string, int>> rendered;
  rendered.reserve(patterns.size());
  for (int i = 0; i < static_cast<int>(patterns.size()); ++i) {
    rendered.emplace_back(render_pos(i, 0) + " " + render_pos(i, 1) + " " +
                              render_pos(i, 2),
                          i);
  }
  std::sort(rendered.begin(), rendered.end());

  // The rank numbering above fixes the canonical *pattern order*; the
  // final variable numbers are re-assigned by first occurrence in that
  // order (s, p, o within a pattern). That is exactly the order
  // JoinGraph interns VarIds in, so canonical variable xk IS VarId k of
  // JoinGraph(out.patterns) and result columns line up with var_names.
  // A structure-determined permutation of an invariant numbering is
  // still invariant.
  for (int& v : var_num) {
    if (v >= 0) v = -1;
  }
  {
    int next = 0;
    for (const auto& [text, orig] : rendered) {
      (void)text;
      for (int pos = 0; pos < 3; ++pos) {
        int node = d.pattern_nodes[orig][pos];
        if (node >= 0 && d.nodes[node].is_var && var_num[node] < 0) {
          var_num[node] = next++;
        }
      }
    }
  }

  CanonicalBgp out;
  out.exact = exact;
  for (std::size_t k = 0; k < rendered.size(); ++k) {
    int orig = rendered[k].second;
    if (k > 0) out.signature += " . ";
    out.signature += render_pos(orig, 0) + " " + render_pos(orig, 1) + " " +
                     render_pos(orig, 2);
    out.pattern_perm.push_back(orig);
  }

  // Canonical pattern list: canonical order, canonical variable names,
  // original constants.
  auto canonical_term = [&](int pattern, int pos) -> PatternTerm {
    int node = d.pattern_nodes[pattern][pos];
    const TriplePattern& tp = patterns[pattern];
    const PatternTerm& orig = pos == 0 ? tp.s : (pos == 1 ? tp.p : tp.o);
    if (node < 0 || !d.nodes[node].is_var) return orig;
    return PatternTerm::Var("x" + std::to_string(var_num[node]));
  };
  for (const auto& [text, orig] : rendered) {
    (void)text;
    TriplePattern tp;
    tp.s = canonical_term(orig, 0);
    tp.p = canonical_term(orig, 1);
    tp.o = canonical_term(orig, 2);
    out.patterns.push_back(std::move(tp));
  }

  // Externalized parameters and the variable-name mapping, by canonical
  // number.
  int num_vars = 0, num_consts = 0;
  for (std::size_t i = 0; i < d.nodes.size(); ++i) {
    if (d.nodes[i].is_var) ++num_vars;
    else ++num_consts;
  }
  out.var_names.resize(num_vars);
  out.constants.resize(num_consts);
  for (std::size_t i = 0; i < d.nodes.size(); ++i) {
    if (d.nodes[i].is_var) {
      out.var_names[var_num[i]] = d.nodes[i].var_name;
    } else {
      out.constants[const_num[i]] = d.nodes[i].constant;
    }
  }
  return out;
}

/// Smallest color value shared by at least two nodes, or -1 when the
/// coloring is discrete. The class is identified by its color (a rank),
/// which is invariant, so every isomorphic copy branches on the same
/// class.
int FirstAmbiguousColor(const std::vector<int>& color) {
  std::map<int, int> count;
  for (int c : color) ++count[c];
  for (const auto& [c, n] : count) {
    if (n >= 2) return c;
  }
  return -1;
}

struct Search {
  const Decomposition* d = nullptr;
  int candidates = 0;
  bool exhausted = false;
  bool have_best = false;
  CanonicalBgp best;

  void Consider(CanonicalBgp cand) {
    if (!have_best || cand.signature < best.signature) {
      have_best = true;
      best = std::move(cand);
    }
  }

  // Individualization-refinement: branch on each member of the first
  // ambiguous class, keep the lexicographically smallest canonical form.
  // Trying every member makes the choice independent of node discovery
  // order, which is what makes the form renaming-invariant.
  void Run(std::vector<int> color) {
    color = Refine(*d, std::move(color));
    int ambiguous = FirstAmbiguousColor(color);
    if (ambiguous < 0) {
      ++candidates;
      Consider(Render(*d, color, /*exact=*/true));
      return;
    }
    if (candidates >= kMaxCandidates) {
      exhausted = true;
      ++candidates;
      Consider(Render(*d, color, /*exact=*/false));
      return;
    }
    for (std::size_t i = 0; i < color.size(); ++i) {
      if (color[i] != ambiguous) continue;
      if (candidates >= kMaxCandidates) {
        // Out of budget mid-class: the branches explored so far still
        // yield a deterministic (input-order-dependent) form.
        exhausted = true;
        break;
      }
      // Individualize node i: split it below its class, preserving the
      // relative order of all other colors.
      std::vector<int> child(color.size());
      for (std::size_t j = 0; j < color.size(); ++j) {
        child[j] = color[j] * 2 + (j == i ? 0 : 1);
      }
      Run(std::move(child));
    }
  }
};

}  // namespace

CanonicalBgp CanonicalizeBgp(const std::vector<TriplePattern>& patterns) {
  PARQO_CHECK(static_cast<int>(patterns.size()) <= TpSet::kMaxSize);
  if (patterns.empty()) return CanonicalBgp{};

  Decomposition d = Decompose(patterns);
  std::vector<int> color(d.nodes.size());
  for (std::size_t i = 0; i < d.nodes.size(); ++i) {
    color[i] = d.nodes[i].is_var ? 0 : 1;
  }
  Search search;
  search.d = &d;
  search.Run(std::move(color));
  PARQO_CHECK(search.have_best);
  if (search.exhausted) search.best.exact = false;
  return search.best;
}

}  // namespace parqo
