// Sharded LRU plan cache for the serving layer (DESIGN.md section 14).
// Keys are canonical BGP signatures combined with the partitioning scheme
// — a plan's shape depends on the maximal-local-query structure, so the
// same query under hash-by-subject and METIS partitioning must occupy two
// entries.
//
// Concurrency contract: every operation copies the entry *under the shard
// lock* and returns it by value (the plan itself is a shared_ptr<const
// PlanNode>, so the copy is one refcount bump). A reader can therefore
// never observe a dangling plan, no matter how aggressively a concurrent
// hot shard evicts — eviction drops the cache's reference, not the
// reader's. There is deliberately no Lookup returning a pointer into the
// shard.

#ifndef PARQO_SERVER_PLAN_CACHE_H_
#define PARQO_SERVER_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "optimizer/optimizer.h"
#include "plan/plan.h"

namespace parqo {

/// One cached optimization result, stored in canonical pattern/VarId
/// space (see server/signature.h).
struct CachedPlan {
  PlanNodePtr plan;
  double plan_cost = 0;
  Algorithm algorithm_used = Algorithm::kTdAuto;
  /// The optimizer's deadline expired (or it fell back to MSC), so this
  /// plan is best-effort, not the space's optimum. Kept usable — a
  /// degraded plan still beats re-optimizing under pressure — but flagged
  /// so an unhurried request re-optimizes and upgrades the entry instead
  /// of being poisoned by it.
  bool degraded = false;
};

class PlanCache {
 public:
  /// `num_shards` clamps to >= 1; `shard_capacity` is the per-shard entry
  /// cap (total capacity = num_shards * shard_capacity, clamps to >= 1).
  PlanCache(int num_shards, std::size_t shard_capacity);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Cache key for a canonical signature under a partitioning scheme.
  static std::string MakeKey(const std::string& signature,
                             const std::string& partitioning) {
    return partitioning + "\n" + signature;
  }

  /// Copy-out lookup: returns the entry by value (plan shared) and marks
  /// it most-recently-used, or nullopt on a miss.
  std::optional<CachedPlan> Lookup(const std::string& key);

  /// Inserts or overwrites (the overwrite path is how a degraded entry is
  /// upgraded) and marks the entry most-recently-used; evicts from the
  /// shard's cold end past capacity.
  void Insert(const std::string& key, CachedPlan plan);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  std::size_t size() const;

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t inserts() const {
    return inserts_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    /// Leaf in practice: held only for the map/list surgery, never across
    /// metric updates or the optimizer. size() locks the shards one at a
    /// time (sequentially, never nested), which a same-rank hierarchy
    /// permits because at most one shard lock is ever held.
    Mutex mu{LockRank::kCacheShard};
    /// Front = most recently used. The map indexes into the list.
    std::list<std::pair<std::string, CachedPlan>> lru PARQO_GUARDED_BY(mu);
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, CachedPlan>>::iterator>
        index PARQO_GUARDED_BY(mu);
  };

  Shard& ShardFor(const std::string& key);

  /// Pops cold entries until the shard is back under shard_capacity_;
  /// returns how many were dropped.
  std::uint64_t EvictExcessLocked(Shard& shard) PARQO_REQUIRES(shard.mu);

  std::size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Local mirrors of the server.cache.* registry counters, readable even
  /// when global metrics collection is disabled (tests and benches).
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace parqo

#endif  // PARQO_SERVER_PLAN_CACHE_H_
