// Admission control for the serving layer: a bounded in-flight counter
// with a typed rejection. A server sized for N concurrent optimizations
// must turn away request N+1 *before* doing any work for it — queueing it
// would grow latency without bound, and optimizing it would steal cycles
// from admitted queries. Rejected requests get StatusCode::kOverloaded
// (nothing was attempted; back off and re-submit), never a silent queue.
//
// Lock-free by design: admission sits on every request's front door, so
// the controller is pure atomics and deliberately owns no Mutex — it has
// no rank in the lock hierarchy (common/thread_annotations.h) and can be
// consulted while any lock is held.

#ifndef PARQO_SERVER_ADMISSION_H_
#define PARQO_SERVER_ADMISSION_H_

#include <atomic>
#include <cstdint>

#include "common/check.h"

namespace parqo {

class AdmissionController {
 public:
  /// `max_in_flight` clamps to >= 1.
  explicit AdmissionController(int max_in_flight)
      : max_(max_in_flight < 1 ? 1 : max_in_flight) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Claims one in-flight slot; false when the server is at capacity.
  /// CAS loop rather than fetch_add/undo so a rejected caller never
  /// transiently occupies a slot another request could have used.
  bool TryAdmit() {
    int cur = in_flight_.load(std::memory_order_relaxed);
    while (cur < max_) {
      if (in_flight_.compare_exchange_weak(cur, cur + 1,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
        admitted_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  void Release() {
    int prev = in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    PARQO_CHECK(prev > 0);
  }

  int max_in_flight() const { return max_; }
  int in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  std::uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  const int max_;
  std::atomic<int> in_flight_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

/// RAII in-flight slot: truthy when admitted, releases on destruction.
/// Sessions hold one across the whole optimize+execute pipeline so a
/// query that throws out of the executor still frees its slot.
class AdmissionTicket {
 public:
  explicit AdmissionTicket(AdmissionController& controller)
      : controller_(&controller), admitted_(controller.TryAdmit()) {}

  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  ~AdmissionTicket() {
    if (admitted_) controller_->Release();
  }

  explicit operator bool() const { return admitted_; }

 private:
  AdmissionController* controller_;
  bool admitted_;
};

}  // namespace parqo

#endif  // PARQO_SERVER_ADMISSION_H_
