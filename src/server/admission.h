// Admission control for the serving layer: a bounded in-flight counter
// with a typed rejection, an optional bounded wait-queue, and optional
// health-driven load shedding. A server sized for N concurrent
// optimizations must turn away request N+1 *before* doing any work for
// it; but a fixed cap alone converts every momentary burst into client
// retries, so the adaptive front door may briefly park a request in a
// BOUNDED queue (bounded depth and bounded wait — never the unbounded
// queue that grows latency without limit). When the NodeHealthRegistry's
// measured session p99 says the cluster is degraded, queueing stops and
// the effective cap halves: shedding load is how an overloaded system
// gets back under its latency target. Rejected requests get
// StatusCode::kOverloaded (nothing was attempted; back off and
// re-submit), never a silent queue.
//
// Concurrency: the slot counter stays pure atomics, so the no-queue
// configuration (the `int` constructor) is exactly the old lock-free
// front door. The wait-queue path owns the lowest-ranked Mutex in the
// hierarchy (LockRank::kAdmission) — it is the first thing a request
// touches, before any other lock can be held — and waits on a condition
// variable with both a guarded predicate and a deadline, per the
// naked-sleep rule's bounded-wait contract.

#ifndef PARQO_SERVER_ADMISSION_H_
#define PARQO_SERVER_ADMISSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>

#include "common/check.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "exec/health.h"

namespace parqo {

/// Front-door policy. The defaults reproduce the fixed-cap behavior;
/// serving configs turn on the queue and shedding.
struct AdmissionConfig {
  int max_in_flight = 64;  ///< Clamps to >= 1.
  /// Requests that may wait for a slot instead of being rejected
  /// outright; 0 restores the immediate-reject front door.
  int max_queue = 0;
  /// Longest a queued request waits before giving up with kOverloaded.
  double max_queue_wait_seconds = 0.02;
  /// Load shedding: while the health registry's session p99 exceeds
  /// this, queueing is suspended and the effective cap halves. 0 (or no
  /// registry) disables shedding.
  double shed_p99_seconds = 0;
};

class AdmissionController {
 public:
  /// Fixed-cap front door: no queue, no shedding, pure atomics — the
  /// original semantics, kept for callers that want hard rejection.
  explicit AdmissionController(int max_in_flight)
      : AdmissionController(
            AdmissionConfig{max_in_flight, 0, 0.0, 0.0}, nullptr) {}

  /// Adaptive front door. `health` (optional, not owned) supplies the
  /// measured p99 that drives shedding.
  explicit AdmissionController(AdmissionConfig config,
                               NodeHealthRegistry* health = nullptr)
      : config_(config), health_(health) {
    if (config_.max_in_flight < 1) config_.max_in_flight = 1;
    if (config_.max_queue < 0) config_.max_queue = 0;
  }

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Claims one in-flight slot, possibly after a bounded queue wait;
  /// false when the server is at capacity (or shedding load).
  bool TryAdmit() {
    bool shedding = IsShedding();
    if (TryClaim(EffectiveCap(shedding))) {
      admitted_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (shedding) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (config_.max_queue <= 0 ||
        config_.max_queue_wait_seconds <= 0) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return WaitForSlot();
  }

  void Release() {
    int prev = in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    PARQO_CHECK(prev > 0);
    if (config_.max_queue > 0) {
      // Briefly pairing with mu_ closes the lost-wakeup window (a waiter
      // between its predicate check and its wait): by the time this lock
      // is held, any such waiter is parked in the cv and will see the
      // notify. Waiters are deadline-bounded regardless, so this is a
      // latency fix, not a correctness requirement.
      MutexLock lock(mu_);
    }
    cv_.notify_one();
  }

  /// True while the health registry's measured p99 is over the shed
  /// threshold (the cap is halved and the queue is bypassed).
  bool IsShedding() const {
    return health_ != nullptr && config_.shed_p99_seconds > 0 &&
           health_->SessionP99Seconds() > config_.shed_p99_seconds;
  }

  int max_in_flight() const { return config_.max_in_flight; }
  int max_queue() const { return config_.max_queue; }
  int in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  std::uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  /// Requests admitted only after waiting in the queue.
  std::uint64_t queue_admitted() const {
    return queue_admitted_.load(std::memory_order_relaxed);
  }
  /// Requests rejected after their bounded queue wait expired (or the
  /// queue itself was full).
  std::uint64_t queue_rejected() const {
    return queue_rejected_.load(std::memory_order_relaxed);
  }
  /// Requests rejected specifically because the server was shedding.
  std::uint64_t shed() const {
    return shed_.load(std::memory_order_relaxed);
  }
  /// Requests currently parked in the wait-queue.
  int queued() {
    MutexLock lock(mu_);
    return queued_;
  }

 private:
  int EffectiveCap(bool shedding) const {
    if (!shedding) return config_.max_in_flight;
    int half = config_.max_in_flight / 2;
    return half < 1 ? 1 : half;
  }

  /// CAS loop rather than fetch_add/undo so a rejected caller never
  /// transiently occupies a slot another request could have used.
  bool TryClaim(int cap) {
    int cur = in_flight_.load(std::memory_order_relaxed);
    while (cur < cap) {
      if (in_flight_.compare_exchange_weak(cur, cur + 1,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  /// The bounded queue: wait (predicate + deadline) for a slot.
  bool WaitForSlot() {
    Deadline deadline =
        Deadline::AfterSeconds(config_.max_queue_wait_seconds);
    MutexLock lock(mu_);
    if (queued_ >= config_.max_queue) {
      queue_rejected_.fetch_add(1, std::memory_order_relaxed);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    ++queued_;
    for (;;) {
      // Shedding that starts while we wait empties the queue too: a
      // degraded cluster should not admit parked bursts.
      if (!IsShedding() && TryClaim(EffectiveCap(false))) {
        --queued_;
        admitted_.fetch_add(1, std::memory_order_relaxed);
        queue_admitted_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      double remaining = deadline.RemainingSeconds();
      if (remaining <= 0 || IsShedding()) {
        --queued_;
        if (IsShedding()) shed_.fetch_add(1, std::memory_order_relaxed);
        queue_rejected_.fetch_add(1, std::memory_order_relaxed);
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      lock.WaitFor(cv_, remaining);
    }
  }

  // parqo-lint: allow(guarded-field) written only in the constructor
  AdmissionConfig config_;
  // parqo-lint: allow(guarded-field) immutable borrowed pointer
  NodeHealthRegistry* health_;
  std::atomic<int> in_flight_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> queue_admitted_{0};
  std::atomic<std::uint64_t> queue_rejected_{0};
  std::atomic<std::uint64_t> shed_{0};

  /// Guards the queue depth; ranked at the very bottom of the hierarchy
  /// because admission is the first thing a request touches.
  Mutex mu_{LockRank::kAdmission};
  int queued_ PARQO_GUARDED_BY(mu_) = 0;
  std::condition_variable cv_;
};

/// RAII in-flight slot: truthy when admitted, releases on destruction.
/// Sessions hold one across the whole optimize+execute pipeline so a
/// query that throws out of the executor still frees its slot.
class AdmissionTicket {
 public:
  explicit AdmissionTicket(AdmissionController& controller)
      : controller_(&controller), admitted_(controller.TryAdmit()) {}

  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  ~AdmissionTicket() {
    if (admitted_) controller_->Release();
  }

  explicit operator bool() const { return admitted_; }

 private:
  AdmissionController* controller_;
  bool admitted_;
};

}  // namespace parqo

#endif  // PARQO_SERVER_ADMISSION_H_
