#include "server/plan_cache.h"

#include <algorithm>
#include <functional>

#include "common/metrics.h"

namespace parqo {

PlanCache::PlanCache(int num_shards, std::size_t shard_capacity)
    : shard_capacity_(std::max<std::size_t>(1, shard_capacity)) {
  num_shards = std::max(1, num_shards);
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PlanCache::Shard& PlanCache::ShardFor(const std::string& key) {
  std::size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

std::optional<CachedPlan> PlanCache::Lookup(const std::string& key) {
  static MetricCounter& m_hits =
      MetricsRegistry::Global().counter("server.cache.hits");
  static MetricCounter& m_misses =
      MetricsRegistry::Global().counter("server.cache.misses");
  Shard& shard = ShardFor(key);
  std::optional<CachedPlan> out;
  {
    MutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      // Copy while the lock pins the entry: the caller's shared_ptr
      // keeps the plan alive through any concurrent eviction.
      out = it->second->second;
    }
  }
  if (out) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    m_hits.Add();
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    m_misses.Add();
  }
  return out;
}

void PlanCache::Insert(const std::string& key, CachedPlan plan) {
  static MetricCounter& m_inserts =
      MetricsRegistry::Global().counter("server.cache.inserts");
  static MetricCounter& m_evictions =
      MetricsRegistry::Global().counter("server.cache.evictions");
  Shard& shard = ShardFor(key);
  std::uint64_t evicted = 0;
  {
    MutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(plan);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.emplace_front(key, std::move(plan));
      shard.index.emplace(key, shard.lru.begin());
      evicted = EvictExcessLocked(shard);
    }
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  m_inserts.Add();
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    m_evictions.Add(evicted);
  }
}

std::uint64_t PlanCache::EvictExcessLocked(Shard& shard) {
  std::uint64_t evicted = 0;
  while (shard.lru.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++evicted;
  }
  return evicted;
}

std::size_t PlanCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace parqo
