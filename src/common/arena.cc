#include "common/arena.h"

#include <cstdint>

namespace parqo {

Arena::Arena(std::size_t block_bytes) : block_bytes_(block_bytes) {
  PARQO_CHECK(block_bytes_ > 0);
}

Arena::~Arena() {
  // ASan requires regions to be unpoisoned before the underlying memory
  // is returned to the allocator.
  for (Block& b : blocks_) PARQO_ARENA_UNPOISON(b.data.get(), b.size);
}

void Arena::NextBlock(std::size_t size) {
  // Reuse the next retained block that fits; skipped blocks (too small
  // for an oversize request) simply stay unused until the next Reset.
  std::size_t i = blocks_.empty() ? 0 : current_ + 1;
  while (i < blocks_.size() && blocks_[i].size < size) ++i;
  if (i == blocks_.size()) {
    Block b;
    b.size = size > block_bytes_ ? size : block_bytes_;
    b.data = std::make_unique<char[]>(b.size);
    bytes_reserved_ += b.size;
    PARQO_ARENA_POISON(b.data.get(), b.size);
    blocks_.push_back(std::move(b));
  }
  current_ = i;
  ptr_ = blocks_[i].data.get();
  end_ = ptr_ + blocks_[i].size;
}

void* Arena::AllocateSlow(std::size_t size, std::size_t align) {
  // A fresh block is max_align-aligned by operator new for any sane
  // `align`; re-derive the aligned pointer from it.
  NextBlock(size + align + kRedzone);
  std::uintptr_t p = reinterpret_cast<std::uintptr_t>(ptr_);
  std::uintptr_t aligned = (p + align - 1) & ~(std::uintptr_t{align} - 1);
  std::size_t needed = (aligned - p) + size + kRedzone;
  ptr_ += needed;
  bytes_used_ += size;
  void* out = reinterpret_cast<void*>(aligned);
  PARQO_ARENA_UNPOISON(out, size);
  return out;
}

void Arena::Reset() {
  for (Block& b : blocks_) PARQO_ARENA_POISON(b.data.get(), b.size);
  current_ = 0;
  bytes_used_ = 0;
  if (blocks_.empty()) {
    ptr_ = end_ = nullptr;
  } else {
    ptr_ = blocks_[0].data.get();
    end_ = ptr_ + blocks_[0].size;
  }
}

}  // namespace parqo
