// Invariant-checking macros. Library code does not throw; internal
// invariant violations abort with a file:line message so a violated
// optimizer contract (a disconnected memo entry, a mis-costed plan) can
// never silently produce a wrong plan.
//
//   PARQO_CHECK(expr)     - always on, in every build type. Use for cheap
//                           contracts on public entry points and for
//                           "this must hold or the result is garbage".
//   PARQO_CHECK_OK(st)    - PARQO_CHECK for Status values; prints the
//                           status message on failure.
//   PARQO_DCHECK(expr)    - debug-build validation. Compiled out (operands
//                           unevaluated) in NDEBUG builds unless the build
//                           sets -DPARQO_VALIDATE (cmake -DPARQO_VALIDATE=ON).
//                           Use freely on hot paths: the enumerators check
//                           the Lemma 1-2 division contract per emitted
//                           division under this macro.
//
// PARQO_DCHECK_ENABLED is 1 when PARQO_DCHECK is live, so tests (and the
// rare expensive validator block) can mirror the compile-out behavior:
//
//   #if PARQO_DCHECK_ENABLED
//     ... build the cross-check structure ...
//   #endif

#ifndef PARQO_COMMON_CHECK_H_
#define PARQO_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace parqo {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "PARQO_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

[[noreturn]] inline void CheckFailedWithMessage(const char* file, int line,
                                                const char* expr,
                                                const char* message) {
  std::fprintf(stderr, "PARQO_CHECK failed at %s:%d: %s: %s\n", file, line,
               expr, message);
  std::abort();
}

}  // namespace internal
}  // namespace parqo

#define PARQO_CHECK(expr)                                                    \
  do {                                                                       \
    if (!(expr)) ::parqo::internal::CheckFailed(__FILE__, __LINE__, #expr);  \
  } while (false)

/// Checks that a parqo::Status (or any value with ok() / message()) is OK.
#define PARQO_CHECK_OK(expr)                                                 \
  do {                                                                       \
    auto _parqo_check_st = (expr);                                           \
    if (!_parqo_check_st.ok()) {                                             \
      ::parqo::internal::CheckFailedWithMessage(                             \
          __FILE__, __LINE__, #expr, _parqo_check_st.message().c_str());     \
    }                                                                        \
  } while (false)

#if !defined(PARQO_DCHECK_ENABLED)
#if defined(PARQO_VALIDATE) || !defined(NDEBUG)
#define PARQO_DCHECK_ENABLED 1
#else
#define PARQO_DCHECK_ENABLED 0
#endif
#endif

#if PARQO_DCHECK_ENABLED
#define PARQO_DCHECK(expr) PARQO_CHECK(expr)
#define PARQO_DCHECK_OK(expr) PARQO_CHECK_OK(expr)
#else
// Operands are parsed (so they cannot rot) but never evaluated.
#define PARQO_DCHECK(expr)           \
  do {                               \
    (void)sizeof(!(expr));           \
  } while (false)
#define PARQO_DCHECK_OK(expr)        \
  do {                               \
    (void)sizeof((expr).ok());       \
  } while (false)
#endif

#endif  // PARQO_COMMON_CHECK_H_
