#include "common/trace.h"

#include <cstdio>
#include <functional>
#include <thread>
#include <utility>

namespace parqo {
namespace {

// Compact per-thread id for trace rows; assigned in first-use order so
// the viewer shows worker 1, 2, 3... rather than opaque pthread handles.
std::uint32_t CurrentTid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid = next.fetch_add(1);
  return tid;
}

// JSON string escaping for event names (categories are static literals
// we control, but names may carry query text).
void AppendEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  // parqo-lint: allow(naked-new) leaked singleton, outlives static dtors
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

std::int64_t TraceRecorder::NowMicros() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

void TraceRecorder::Record(std::string name, const char* category,
                           std::int64_t ts_us, std::int64_t dur_us) {
  if (!enabled()) return;
  Event e;
  e.name = std::move(name);
  e.category = category;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.tid = CurrentTid();
  MutexLock lock(mu_);
  events_.push_back(std::move(e));
}

std::size_t TraceRecorder::NumEvents() const {
  MutexLock lock(mu_);
  return events_.size();
}

void TraceRecorder::Clear() {
  MutexLock lock(mu_);
  events_.clear();
}

std::string TraceRecorder::ToChromeJson() const {
  MutexLock lock(mu_);
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const Event& e : events_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\": \"";
    AppendEscaped(out, e.name);
    out += "\", \"cat\": \"";
    AppendEscaped(out, e.category);
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "\", \"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
                  "\"ts\": %lld, \"dur\": %lld}",
                  e.tid, static_cast<long long>(e.ts_us),
                  static_cast<long long>(e.dur_us));
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

}  // namespace parqo
