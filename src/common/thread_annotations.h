// Compile-time lock discipline (DESIGN.md section 15).
//
// Two mechanisms, one header:
//
//  1. Clang Thread Safety Analysis plumbing. The PARQO_* macros below
//     expand to the clang `capability` attribute family under clang and
//     to nothing elsewhere, so a GCC build is byte-identical while the CI
//     thread-safety job (clang, -Wthread-safety -Wthread-safety-beta
//     -Werror) turns every unannotated guarded access, missing REQUIRES,
//     or declared-order violation into a build break.
//
//  2. A static lock hierarchy. Every mutex in src/ is constructed with a
//     LockRank from the registry below; a thread may only acquire a mutex
//     whose rank is STRICTLY GREATER than the rank of every mutex it
//     already holds. The ordering is enforced three ways: clang
//     ACQUIRED_BEFORE/ACQUIRED_AFTER relations where both mutexes are
//     visible to each other (checked by -Wthread-safety-beta),
//     tools/parqo_lint.py's mutex-rank / lock-rank-order rules (checked
//     on every build via the lint_test ctest target), and a runtime
//     checker in MutexLock that maintains a per-thread stack of held
//     ranks (on by default in debug and PARQO_VALIDATE builds,
//     switchable at runtime for tests).
//
// Usage contract (enforced by parqo_lint):
//   - declare mutexes as parqo::Mutex / parqo::SharedMutex with an
//     explicit rank: `Mutex mu_{LockRank::kMetrics};` — raw std::mutex /
//     std::shared_mutex members are banned outside this header;
//   - acquire only through the RAII guards (MutexLock / SharedMutexLock);
//     naked Lock()/Unlock() calls are banned outside this header;
//   - every mutable field of a type that owns a mutex carries
//     PARQO_GUARDED_BY(mu) or a written allow(guarded-field) reason;
//   - PARQO_NO_THREAD_SAFETY_ANALYSIS requires an allow(tsa-escape)
//     justification on the same line.

#ifndef PARQO_COMMON_THREAD_ANNOTATIONS_H_
#define PARQO_COMMON_THREAD_ANNOTATIONS_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/check.h"

// -- Attribute plumbing ------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PARQO_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#if !defined(PARQO_THREAD_ANNOTATION_)
#define PARQO_THREAD_ANNOTATION_(x)  // no-op on GCC and pre-TSA clangs
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define PARQO_CAPABILITY(x) PARQO_THREAD_ANNOTATION_(capability(x))
/// Marks an RAII type whose lifetime holds a capability.
#define PARQO_SCOPED_CAPABILITY PARQO_THREAD_ANNOTATION_(scoped_lockable)
/// Field may only be read/written while holding `x`.
#define PARQO_GUARDED_BY(x) PARQO_THREAD_ANNOTATION_(guarded_by(x))
/// Pointee (not the pointer) is guarded by `x`.
#define PARQO_PT_GUARDED_BY(x) PARQO_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Caller must hold the capability exclusively.
#define PARQO_REQUIRES(...) \
  PARQO_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// Caller must hold the capability at least shared.
#define PARQO_REQUIRES_SHARED(...) \
  PARQO_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability (exclusively) and does not release it.
#define PARQO_ACQUIRE(...) \
  PARQO_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define PARQO_ACQUIRE_SHARED(...) \
  PARQO_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability.
#define PARQO_RELEASE(...) \
  PARQO_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define PARQO_RELEASE_SHARED(...) \
  PARQO_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `b`.
#define PARQO_TRY_ACQUIRE(...) \
  PARQO_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (deadlock-by-reentry guard).
#define PARQO_EXCLUDES(...) \
  PARQO_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Declared acquisition order between two visible mutexes; violations are
/// rejected by clang under -Wthread-safety-beta.
#define PARQO_ACQUIRED_BEFORE(...) \
  PARQO_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define PARQO_ACQUIRED_AFTER(...) \
  PARQO_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
/// Function returns a reference to the capability `x`.
#define PARQO_RETURN_CAPABILITY(x) PARQO_THREAD_ANNOTATION_(lock_returned(x))
/// Runtime assertion that the capability is held (e.g. after a fan-in).
#define PARQO_ASSERT_CAPABILITY(x) \
  PARQO_THREAD_ANNOTATION_(assert_capability(x))
/// Escape hatch. Every use must carry a parqo-lint allow(tsa-escape)
/// justification; prefer restructuring over suppressing.
#define PARQO_NO_THREAD_SAFETY_ANALYSIS \
  PARQO_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace parqo {

// -- Static lock hierarchy ---------------------------------------------
//
// The ranked registry. A thread holding a mutex of rank r may only
// acquire mutexes of rank STRICTLY GREATER than r; since the codebase's
// locks are all leaves today (nothing acquires a second mutex while
// holding one), any nesting introduced by future work — the ROADMAP's
// online repartitioner mutating layout under a warm cache is the
// motivating case — must thread top-down through this order:
//
//   server session state, then cache shards, then executor recovery,
//   then optimizer/estimator memo shards, then the thread pool, then
//   the leaf diagnostics locks (fault, trace, metrics).
//
// tools/parqo_lint.py parses this enum (names and values) and enforces
// that every mutex declaration carries a registered rank and that
// lexically nested acquisitions are strictly increasing. Keep the
// numeric gaps: they leave room to slot new subsystems between layers
// without renumbering.
enum class LockRank : int {
  kServer = 10,          ///< Reserved: QueryServer session/layout state.
  kAdmission = 12,       ///< AdmissionController wait-queue (server/admission.h).
  kCacheShard = 20,      ///< PlanCache::Shard::mu (server/plan_cache.h).
  kHealth = 25,          ///< NodeHealthRegistry::mu_ (exec/health.h).
  kExecRecovery = 30,    ///< Executor fault-recovery state (exec/executor.cc).
  kMemoShard = 40,       ///< TdCmdCore::MemoShard::mu (optimizer/td_cmd_core.h).
  kEstimatorShard = 42,  ///< CardinalityEstimator::Shard::mu (stats/estimator.h).
  kPool = 50,            ///< ThreadPool queue state (common/thread_pool.h).
  kPoolJoin = 52,        ///< ParallelFor completion latch (common/thread_pool.cc).
  kFault = 60,           ///< FaultPlan::drop_mu_ (common/fault.h).
  kTrace = 70,           ///< TraceRecorder::mu_ (common/trace.h).
  kMetrics = 80,         ///< MetricsRegistry::mu_ (common/metrics.h).
  kLeaf = 90,            ///< Strict leaf: never held across any acquisition.
};

namespace lock_rank_internal {

/// Runtime switch for the held-rank checker. Defaults on when PARQO_DCHECK
/// is live (debug or PARQO_VALIDATE builds) so the checker costs one
/// relaxed load + branch per acquisition in release serving builds.
inline std::atomic<bool> g_rank_checks{PARQO_DCHECK_ENABLED != 0};

/// Per-thread stack of held ranks. Fixed capacity: the hierarchy is 10
/// levels deep and same-rank nesting is forbidden, so 16 can never
/// overflow without a rank bug worth aborting on.
struct HeldRanks {
  int ranks[16];
  int depth = 0;
};
inline thread_local HeldRanks t_held;

inline void PushRank(int rank) {
  HeldRanks& h = t_held;
  if (h.depth > 0 && h.ranks[h.depth - 1] >= rank) {
    internal::CheckFailedWithMessage(
        __FILE__, __LINE__, "lock rank order",
        "acquiring a mutex whose LockRank is not strictly greater than "
        "the innermost held lock (see the hierarchy in "
        "common/thread_annotations.h)");
  }
  PARQO_CHECK(h.depth < 16);
  h.ranks[h.depth++] = rank;
}

/// Tolerant pop: removes the innermost entry only when it matches
/// `rank`. Unlock calls this unconditionally (push is what's gated on
/// the enable flag), so flipping the checker between a Lock and its
/// Unlock neither aborts on an empty stack nor leaks a stale rank that
/// would poison every later acquisition on this thread.
inline void PopRank(int rank) {
  HeldRanks& h = t_held;
  if (h.depth > 0 && h.ranks[h.depth - 1] == rank) --h.depth;
}

}  // namespace lock_rank_internal

inline bool LockRankCheckingEnabled() {
  return lock_rank_internal::g_rank_checks.load(std::memory_order_relaxed);
}

/// Tests flip this to exercise the checker in NDEBUG builds (or to
/// silence it around a deliberately misordered death-test scenario).
inline void SetLockRankCheckingEnabled(bool enabled) {
  lock_rank_internal::g_rank_checks.store(enabled,
                                          std::memory_order_relaxed);
}

// -- Annotated mutex wrappers ------------------------------------------

/// std::mutex with a capability annotation and a hierarchy rank. The
/// wrapper is what lets clang's analysis see acquisitions at all
/// (libstdc++'s std::mutex carries no attributes), and the rank is what
/// the lint + runtime checkers order acquisitions by.
class PARQO_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank) : rank_(static_cast<int>(rank)) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PARQO_ACQUIRE() {
    if (LockRankCheckingEnabled()) lock_rank_internal::PushRank(rank_);
    mu_.lock();
  }
  void Unlock() PARQO_RELEASE() {
    mu_.unlock();
    lock_rank_internal::PopRank(rank_);
  }

  int rank() const { return rank_; }

  /// The raw mutex, for MutexLock's condition-variable bridge only.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
  const int rank_;
};

/// std::shared_mutex twin, for future reader-heavy state (none of the
/// current subsystems use one; the linter ranks it the same way).
class PARQO_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank) : rank_(static_cast<int>(rank)) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() PARQO_ACQUIRE() {
    if (LockRankCheckingEnabled()) lock_rank_internal::PushRank(rank_);
    mu_.lock();
  }
  void Unlock() PARQO_RELEASE() {
    mu_.unlock();
    lock_rank_internal::PopRank(rank_);
  }
  void LockShared() PARQO_ACQUIRE_SHARED() {
    if (LockRankCheckingEnabled()) lock_rank_internal::PushRank(rank_);
    mu_.lock_shared();
  }
  void UnlockShared() PARQO_RELEASE_SHARED() {
    mu_.unlock_shared();
    lock_rank_internal::PopRank(rank_);
  }

  int rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  const int rank_;
};

/// RAII exclusive guard — the only sanctioned way to hold a Mutex.
class PARQO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PARQO_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() PARQO_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// One predicate-less wait step on `cv`. Callers loop on their guarded
  /// predicate in normal annotated context (`while (!done_) lock.Wait(cv);`)
  /// so the analysis sees the predicate reads under the capability — the
  /// loop-around-wait form IS the predicate, which is why this wait is
  /// exempt from the naked-sleep lint rule.
  /// The capability is released and reacquired inside the wait; the
  /// analysis treats it as held throughout, which is sound because the
  /// caller only observes guarded state before and after.
  void Wait(std::condition_variable& cv) {
    // Adopt the already-held native mutex for the duration of the wait,
    // then release ownership back to this guard without unlocking.
    std::unique_lock<std::mutex> native(mu_.native(), std::adopt_lock);
    cv.wait(native);  // parqo-lint: allow(naked-sleep) the sanctioned wait primitive; callers loop on a guarded predicate
    native.release();
  }

  /// Bounded variant of Wait(): one wait step that also wakes after
  /// `seconds`. Returns false on timeout, true on a notify (possibly
  /// spurious — callers still loop on their guarded predicate). This is
  /// what makes admission queueing a *bounded* wait rather than an
  /// unbounded block, per the naked-sleep rule's "predicate or timeout"
  /// contract.
  bool WaitFor(std::condition_variable& cv, double seconds) {
    std::unique_lock<std::mutex> native(mu_.native(), std::adopt_lock);
    std::cv_status status = cv.wait_for(  // parqo-lint: allow(naked-sleep) the sanctioned bounded wait primitive
        native, std::chrono::duration<double>(seconds));
    native.release();
    return status == std::cv_status::no_timeout;
  }

 private:
  Mutex& mu_;
};

/// RAII shared (reader) guard for SharedMutex.
class PARQO_SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mu) PARQO_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~SharedMutexLock() PARQO_RELEASE_SHARED() { mu_.UnlockShared(); }

  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace parqo

#endif  // PARQO_COMMON_THREAD_ANNOTATIONS_H_
