// Flat open-addressed hash map keyed by TpSet, for the optimizer's memo
// tables (td_cmd_core.h, stats/estimator.h).
//
// The memo lookup sits on the hottest path of the enumeration: one probe
// per subproblem. std::unordered_map pays a heap-allocated node and a
// bucket-pointer chase per probe; this table stores the 8-byte TpSet keys
// and their values inline in one power-of-two slot array with linear
// probing, so a probe is a hash, a mask, and a short contiguous scan.
//
// Invariants (asserted in debug builds, relied on everywhere):
//   * The empty TpSet is the vacant-slot sentinel — memo keys are
//     subqueries, which are never empty.
//   * No erase, therefore no tombstones: probe chains never break, and
//     first-insert-wins (the memo contract under racing derivations —
//     callers lock a shard around mutating calls).
//   * Growth doubles the slot array and rehashes; pointers INTO the table
//     are invalidated, so memo values are plan/derivation POINTERS whose
//     targets live elsewhere (arena / deque) and stay stable.

#ifndef PARQO_COMMON_FLAT_MAP_H_
#define PARQO_COMMON_FLAT_MAP_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/tp_set.h"

namespace parqo {

template <typename V>
class FlatTpSetMap {
 public:
  FlatTpSetMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

  /// Pointer to the value stored under `key`, or null. `key` non-empty.
  const V* Find(TpSet key) const {
    PARQO_DCHECK(!key.Empty());
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = TpSetHash{}(key) & mask;; i = (i + 1) & mask) {
      const Slot& slot = slots_[i];
      if (slot.key == key) return &slot.value;
      if (slot.key.Empty()) return nullptr;
    }
  }
  V* Find(TpSet key) {
    return const_cast<V*>(std::as_const(*this).Find(key));
  }

  /// Inserts (key, value) unless `key` is already present; the existing
  /// value wins. Returns {stored value, inserted}. The returned pointer
  /// is invalidated by the next mutating call.
  std::pair<V*, bool> EmplaceFirstWins(TpSet key, V value) {
    PARQO_DCHECK(!key.Empty());
    if ((size_ + 1) * 2 > slots_.size()) Grow();
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = TpSetHash{}(key) & mask;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.key == key) return {&slot.value, false};
      if (slot.key.Empty()) {
        slot.key = key;
        slot.value = std::move(value);
        ++size_;
        return {&slot.value, true};
      }
    }
  }

  /// Pre-sizes the slot array for `n` entries without exceeding the load
  /// factor, so a bulk build performs no rehashes.
  void Reserve(std::size_t n) {
    std::size_t want = kMinCapacity;
    while (want < 2 * (n + 1)) want <<= 1;
    if (want > slots_.size()) Rehash(want);
  }

  /// Drops all entries; keeps the slot array.
  void Clear() {
    for (Slot& slot : slots_) slot = Slot{};
    size_ = 0;
  }

  /// Visits every (key, value) in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (!slot.key.Empty()) fn(slot.key, slot.value);
    }
  }

 private:
  struct Slot {
    TpSet key;  // empty = vacant
    V value{};
  };

  static constexpr std::size_t kMinCapacity = 16;

  void Grow() {
    Rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
  }

  void Rehash(std::size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    const std::size_t mask = new_capacity - 1;
    for (Slot& slot : old) {
      if (slot.key.Empty()) continue;
      std::size_t i = TpSetHash{}(slot.key) & mask;
      while (!slots_[i].key.Empty()) i = (i + 1) & mask;
      slots_[i] = std::move(slot);
    }
  }

  std::vector<Slot> slots_;  // power-of-two size (or empty)
  std::size_t size_ = 0;
};

}  // namespace parqo

#endif  // PARQO_COMMON_FLAT_MAP_H_
