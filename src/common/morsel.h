// Morsel scheduling for batch execution (DESIGN.md section 13): a work
// range [0, n) is split into fixed-size morsels that run over the shared
// ThreadPool, and the caller reduces per-morsel outputs in morsel-index
// order. That ordered reduction is the determinism argument: whatever the
// thread interleaving, morsel m's output lands at position m, so a
// morsel-parallel operator emits byte-for-byte the rows a serial loop
// would. ParallelFor is caller-participating and nest-safe, so morsel
// parallelism composes with the executor's per-node ForEachNode fan-out
// on the same pool without deadlock.

#ifndef PARQO_COMMON_MORSEL_H_
#define PARQO_COMMON_MORSEL_H_

#include <algorithm>
#include <cstddef>

#include "common/thread_pool.h"

namespace parqo {

/// Rows per morsel when the caller has no reason to choose: small enough
/// that a morsel's working set stays cache-resident, large enough that
/// per-morsel dispatch cost is noise.
inline constexpr std::size_t kDefaultMorselRows = 1024;

/// Number of fixed-size morsels covering [0, n). morsel_rows == 0 means
/// "one morsel for everything".
inline std::size_t NumMorsels(std::size_t n, std::size_t morsel_rows) {
  if (n == 0) return 0;
  if (morsel_rows == 0) return 1;
  return (n + morsel_rows - 1) / morsel_rows;
}

/// Runs fn(morsel_index, begin, end) over every morsel of [0, n). When
/// `parallel`, morsels are dispatched over the global pool; fn must only
/// touch morsel-local state (typically its own slot of a pre-sized chunk
/// vector, reduced in index order afterwards).
template <typename Fn>
void ForEachMorsel(std::size_t n, std::size_t morsel_rows, bool parallel,
                   Fn&& fn) {
  const std::size_t morsels = NumMorsels(n, morsel_rows);
  if (morsels == 0) return;
  if (morsels == 1) {
    fn(std::size_t{0}, std::size_t{0}, n);
    return;
  }
  if (!parallel) {
    for (std::size_t m = 0; m < morsels; ++m) {
      fn(m, m * morsel_rows, std::min(n, (m + 1) * morsel_rows));
    }
    return;
  }
  ThreadPool::Global().ParallelFor(
      static_cast<int>(morsels), [&](int i) {
        std::size_t m = static_cast<std::size_t>(i);
        fn(m, m * morsel_rows, std::min(n, (m + 1) * morsel_rows));
      });
}

}  // namespace parqo

#endif  // PARQO_COMMON_MORSEL_H_
