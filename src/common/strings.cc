#include "common/strings.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace parqo {

std::string_view StripWhitespace(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string WithThousandsSep(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int until_sep = static_cast<int>(digits.size() % 3);
  if (until_sep == 0) until_sep = 3;
  for (char c : digits) {
    if (until_sep == 0) {
      out += ',';
      until_sep = 3;
    }
    out += c;
    --until_sep;
  }
  return out;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 0.001) {
    std::snprintf(buf, sizeof(buf), "%.4fs", seconds);
  } else if (seconds < 100) {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fs", seconds);
  }
  return buf;
}

std::string FormatCostE(double cost) {
  if (cost <= 0) return "0";
  if (!std::isfinite(cost)) return "inf";
  // %E rounds the mantissa and carries into the exponent in one step
  // (999999.9 -> "1.00E+06", never "10.00E5"), and stays exact on
  // denormals where log10/pow normalization drifts. Reformat its
  // "d.ddE[+-]0NN" exponent into the paper's bare form ("3.12E4").
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.2E", cost);
  char* e = std::strchr(buf, 'E');
  if (e == nullptr) return buf;  // unreachable for finite positives
  long exp = std::strtol(e + 1, nullptr, 10);
  char out[48];
  std::snprintf(out, sizeof(out), "%.*sE%ld", static_cast<int>(e - buf),
                buf, exp);
  return out;
}

}  // namespace parqo
