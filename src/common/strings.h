// Small string utilities shared by the parsers and report printers.

#ifndef PARQO_COMMON_STRINGS_H_
#define PARQO_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace parqo {

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string_view> Split(std::string_view s, char sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Human-readable count: 12345678 -> "12,345,678".
std::string WithThousandsSep(std::uint64_t n);

/// Fixed-point seconds: 0.123456 -> "0.123s"; values >= 100 use no decimals.
std::string FormatSeconds(double seconds);

/// Scientific-style cost rendering matching the paper's Table VI ("3.12E4").
std::string FormatCostE(double cost);

}  // namespace parqo

#endif  // PARQO_COMMON_STRINGS_H_
