// Fixed-capacity bitset over the triple patterns (or macro-relations) of a
// query. This is the subquery encoding described in Section III-B of the
// paper: "a query or a subquery is encoded into a bitset. Each bit indicates
// if a triple pattern is contained in a subquery."
//
// All enumeration algorithms (Algorithms 1-3), the local-query check and the
// memo table key on this type, so it is deliberately a trivially copyable
// 8-byte value with branch-free set algebra.

#ifndef PARQO_COMMON_TP_SET_H_
#define PARQO_COMMON_TP_SET_H_

#include <bit>
#include <cstdint>
#include <string>

namespace parqo {

/// A set of triple-pattern indexes, capacity 64 (the paper's largest query
/// has 30 triple patterns; SPARQL BGPs beyond 64 patterns are out of scope).
class TpSet {
 public:
  static constexpr int kMaxSize = 64;

  constexpr TpSet() = default;
  constexpr explicit TpSet(std::uint64_t bits) : bits_(bits) {}

  /// The set {0, 1, ..., n-1}; `n` must be in [0, 64].
  static constexpr TpSet FullSet(int n) {
    return TpSet(n >= kMaxSize ? ~std::uint64_t{0}
                               : ((std::uint64_t{1} << n) - 1));
  }

  /// The singleton set {i}.
  static constexpr TpSet Singleton(int i) { return TpSet(std::uint64_t{1} << i); }

  constexpr bool Contains(int i) const { return (bits_ >> i) & 1u; }
  constexpr bool Empty() const { return bits_ == 0; }
  constexpr int Count() const { return std::popcount(bits_); }
  constexpr std::uint64_t bits() const { return bits_; }

  constexpr void Add(int i) { bits_ |= std::uint64_t{1} << i; }
  constexpr void Remove(int i) { bits_ &= ~(std::uint64_t{1} << i); }

  /// Index of the lowest set bit; undefined on the empty set.
  constexpr int First() const { return std::countr_zero(bits_); }

  /// Removes and returns the lowest set bit index; undefined on empty.
  constexpr int PopFirst() {
    int i = First();
    bits_ &= bits_ - 1;
    return i;
  }

  constexpr bool IsSubsetOf(TpSet other) const {
    return (bits_ & other.bits_) == bits_;
  }
  constexpr bool Intersects(TpSet other) const {
    return (bits_ & other.bits_) != 0;
  }

  friend constexpr TpSet operator|(TpSet a, TpSet b) {
    return TpSet(a.bits_ | b.bits_);
  }
  friend constexpr TpSet operator&(TpSet a, TpSet b) {
    return TpSet(a.bits_ & b.bits_);
  }
  /// Set difference a \ b.
  friend constexpr TpSet operator-(TpSet a, TpSet b) {
    return TpSet(a.bits_ & ~b.bits_);
  }
  constexpr TpSet& operator|=(TpSet o) {
    bits_ |= o.bits_;
    return *this;
  }
  constexpr TpSet& operator&=(TpSet o) {
    bits_ &= o.bits_;
    return *this;
  }
  constexpr TpSet& operator-=(TpSet o) {
    bits_ &= ~o.bits_;
    return *this;
  }
  friend constexpr bool operator==(TpSet a, TpSet b) = default;

  /// Iterates set members in increasing index order.
  class Iterator {
   public:
    constexpr explicit Iterator(std::uint64_t bits) : bits_(bits) {}
    constexpr int operator*() const { return std::countr_zero(bits_); }
    constexpr Iterator& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    friend constexpr bool operator==(Iterator a, Iterator b) = default;

   private:
    std::uint64_t bits_;
  };
  constexpr Iterator begin() const { return Iterator(bits_); }
  constexpr Iterator end() const { return Iterator(0); }

  /// Renders as "{0, 3, 5}" for logs and test failure messages.
  std::string ToString() const;

 private:
  std::uint64_t bits_ = 0;
};

struct TpSetHash {
  std::size_t operator()(TpSet s) const noexcept {
    // SplitMix64 finalizer: cheap and well distributed for bitset keys.
    std::uint64_t x = s.bits();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace parqo

#endif  // PARQO_COMMON_TP_SET_H_
