// Deterministic fault injection and retry policy for the simulated
// cluster (DESIGN.md section 11). The paper's setting — shared-nothing
// nodes running distributed join jobs — is exactly where crashes,
// stragglers, and lost shipments are routine, so the executor must detect
// and recover from them rather than assume success.
//
// A FaultPlan is a seedable schedule of faults:
//
//   crash  - a node dies when its per-node operator counter reaches the
//            scheduled ordinal ("crash mid-scan / mid-join"). One-shot:
//            the event is consumed when it fires, so the recovery path is
//            not re-killed by the same event. Storage (NodeStore) is
//            durable, like DFS blocks under MapReduce: survivors re-read
//            the dead node's partition.
//   slow   - a straggler: every operator on the node is delayed by a
//            fixed amount (the only sanctioned sleep in the codebase;
//            tools/parqo_lint.py forbids naked sleeps elsewhere).
//   drop   - flaky network: each shipment is lost with probability p,
//            decided by a deterministic per-probe Bernoulli draw. Drops
//            can repeat on retry, which is what exhausts retry budgets.
//   sick   - a persistently failing node: every probe is refused until
//            CureNode() revives it. Unlike the one-shot crash event this
//            models cross-query sickness (and, cycled, a flapping node),
//            which is what the NodeHealthRegistry's circuit breakers
//            (exec/health.h, DESIGN.md section 16) exist to absorb.
//
// Plans are injected with an RAII FaultScope. When no scope is active the
// executor's probe is a single relaxed atomic load of a null pointer —
// production builds pay nothing (asserted by BM_FaultProbe* in
// bench/bench_micro.cc).

#ifndef PARQO_COMMON_FAULT_H_
#define PARQO_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"

namespace parqo {

/// Knobs for FaultPlan's seeded-random constructor. Probabilities are
/// per-node (crash/slow) or per-shipment (drop).
struct FaultPlanConfig {
  double crash_probability = 0.0;
  double slow_probability = 0.0;
  double drop_probability = 0.0;
  /// A scheduled crash fires at a uniform ordinal in [0, crash_window)
  /// of the node's operator sequence, so crashes land mid-plan, not only
  /// at the first scan.
  std::uint64_t crash_window = 8;
  /// Straggler delay per operator on a slow node.
  double slow_seconds = 0.0005;
};

/// One run's worth of fault schedules. Thread-safe: the executor probes
/// it concurrently from simulated-node workers. All randomness is fixed
/// at construction or drawn from an internal seeded Rng, so a (seed,
/// plan, data) triple replays the identical fault sequence when the
/// probe order is deterministic (serial executor) and the identical fault
/// *set* under the parallel executor.
class FaultPlan {
 public:
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  /// An empty plan (no faults) for `num_nodes` nodes; configure with the
  /// setters below.
  explicit FaultPlan(int num_nodes);

  /// Seeded-random plan: each node draws its crash/slow fate, and
  /// shipments are dropped with config.drop_probability.
  FaultPlan(std::uint64_t seed, int num_nodes,
            const FaultPlanConfig& config);

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Schedules node `node` to crash when its operator counter reaches
  /// `ordinal` (0 = its very first operator).
  void CrashNodeAtOp(int node, std::uint64_t ordinal);
  /// Makes node `node` a straggler: every operator sleeps `seconds`.
  void SlowNode(int node, double seconds);
  /// Drops each shipment independently with probability `p`, drawn from
  /// a dedicated Rng seeded with `seed`.
  void DropShipments(double p, std::uint64_t seed);
  /// Marks node `node` persistently sick: every BeginNodeOp probe is
  /// refused (no sleep, no counter advance) until CureNode(). Unlike the
  /// one-shot crash this survives across queries, so consecutive
  /// sessions keep failing against the node — the workload a circuit
  /// breaker exists for. Safe to call between queries while a scope is
  /// active (atomic flag flip).
  void SickNode(int node);
  /// Revives a sick node; the next probe succeeds again. Alternating
  /// SickNode/CureNode is the flapping-node chaos scenario.
  void CureNode(int node);

  /// Executor probe: called once per (operator, node) work item before
  /// the work runs. Applies straggler delay, advances the node's operator
  /// counter, and returns false when the node's scheduled crash fires
  /// (consuming the event). A false return means the work item — and any
  /// partial output it would have produced — is lost.
  bool BeginNodeOp(int node);

  /// Executor probe: called once per shipment (one broadcast copy or one
  /// repartition batch). Returns false when the flaky network eats it.
  bool DeliverShipment();

  /// The straggler delay the next BeginNodeOp(node) would pay, without
  /// sleeping or advancing any counter. In the simulated cluster an
  /// attempt's in-flight time IS its injected delay, so this peek is the
  /// hedging scheduler's "elapsed time exceeded the threshold"
  /// observation, available at dispatch (exec/health.h).
  double PeekDelaySeconds(int node) const;

  /// True while `node` is marked sick (probes are being refused).
  bool IsSick(int node) const;

  /// Injection counters, for harness reporting and coverage assertions.
  std::uint64_t crashes_fired() const {
    return crashes_fired_.load(std::memory_order_relaxed);
  }
  std::uint64_t drops_fired() const {
    return drops_fired_.load(std::memory_order_relaxed);
  }
  std::uint64_t slow_ops() const {
    return slow_ops_.load(std::memory_order_relaxed);
  }
  std::uint64_t sick_refusals() const {
    return sick_refusals_.load(std::memory_order_relaxed);
  }

 private:
  struct NodeSchedule {
    std::atomic<std::uint64_t> ops{0};       ///< Operator counter.
    std::atomic<std::uint64_t> crash_at{kNever};
    std::atomic<char> sick{0};               ///< Persistent refusal flag.
    double slow_seconds = 0;                 ///< 0 = not a straggler.
  };

  /// Elements are atomics; the vector's shape is fixed at construction.
  // parqo-lint: allow(guarded-field) per-element atomics, sized in the ctor
  std::vector<NodeSchedule> nodes_;
  /// Written only by DropShipments during single-threaded plan setup,
  /// before any FaultScope publishes the plan to executor workers.
  // parqo-lint: allow(guarded-field) written during single-threaded setup only
  double drop_probability_ = 0;
  /// Guards drop_rng_ (shipments are not hot). Leaf lock.
  Mutex drop_mu_{LockRank::kFault};
  Rng drop_rng_ PARQO_GUARDED_BY(drop_mu_) = Rng(0);
  std::atomic<std::uint64_t> crashes_fired_{0};
  std::atomic<std::uint64_t> drops_fired_{0};
  std::atomic<std::uint64_t> slow_ops_{0};
  std::atomic<std::uint64_t> sick_refusals_{0};
};

namespace fault_internal {
/// The process-wide active plan. Null outside any FaultScope; the
/// executor's disabled-path probe is one relaxed load of this pointer.
inline std::atomic<FaultPlan*> g_active_plan{nullptr};
}  // namespace fault_internal

/// The plan installed by the innermost live FaultScope, or null.
inline FaultPlan* ActiveFaultPlan() {
  return fault_internal::g_active_plan.load(std::memory_order_acquire);
}

/// RAII injection scope: installs `plan` process-wide for its lifetime
/// and restores the previous plan (usually null) on destruction. Scopes
/// are installed/removed single-threaded (test or bench setup code);
/// executor workers only read.
class FaultScope {
 public:
  explicit FaultScope(FaultPlan* plan)
      : prev_(fault_internal::g_active_plan.exchange(
            plan, std::memory_order_acq_rel)) {}
  ~FaultScope() {
    fault_internal::g_active_plan.store(prev_, std::memory_order_release);
  }

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  FaultPlan* prev_;
};

/// Cluster-wide token bucket bounding the TOTAL number of retries across
/// every concurrent session (DESIGN.md section 16). Per-query RetryPolicy
/// bounds how hard ONE query tries; under correlated faults N concurrent
/// queries each retrying K times is an N*K storm against a cluster that
/// is already sick. The budget caps the storm: each retry attempt
/// (never the first attempt) must win a token, and an empty bucket
/// degrades the query to a typed kUnavailable instead of more backoff.
///
/// Lock-free: the bucket is a monotonic allowance — at time t since
/// construction, at most `capacity + floor(t * refill_per_second)` tokens
/// may ever have been acquired — claimed with one CAS per acquire. With
/// refill 0 it is a fixed budget: total retries <= capacity, exactly the
/// bound the chaos sweeps assert.
class RetryBudget {
 public:
  explicit RetryBudget(std::uint64_t capacity,
                       double refill_per_second = 0.0)
      : capacity_(capacity), refill_per_second_(refill_per_second) {}

  RetryBudget(const RetryBudget&) = delete;
  RetryBudget& operator=(const RetryBudget&) = delete;

  /// Claims one token; false when the bucket is (currently) empty.
  /// Exported as server.retry_budget.{acquired,denied} metrics.
  bool TryAcquire();

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t acquired() const {
    return acquired_.load(std::memory_order_relaxed);
  }
  std::uint64_t denied() const {
    return denied_.load(std::memory_order_relaxed);
  }
  /// Tokens still claimable right now (saturating at 0).
  std::uint64_t remaining() const;

 private:
  std::uint64_t AllowanceNow() const;

  const std::uint64_t capacity_;
  const double refill_per_second_;
  Stopwatch since_;  ///< Steady clock; refill accrues from construction.
  std::atomic<std::uint64_t> acquired_{0};
  std::atomic<std::uint64_t> denied_{0};
};

/// Bounded-retry policy with exponential backoff, deterministic jitter,
/// and deadline awareness. Shared by the executor's recovery loop; the
/// defaults keep simulated retries free (no backoff sleep) while still
/// exercising the full policy arithmetic.
struct RetryPolicy {
  /// Total attempts including the first; 0 forbids even the first try.
  int max_attempts = 4;
  double initial_backoff_seconds = 0.0;
  double max_backoff_seconds = 0.050;
  double backoff_multiplier = 2.0;
  /// Each backoff is scaled by a uniform factor in [1 - j, 1 + j].
  double jitter_fraction = 0.25;
  /// Optional shared cluster-wide budget (not owned; must outlive every
  /// Retry built from this policy). When set, every attempt after the
  /// first draws one token; an empty bucket stops the retry loop with
  /// budget_exhausted() so callers report kUnavailable.
  RetryBudget* budget = nullptr;
};

/// One operation's retry state: attempt budget, deadline, and the
/// jittered backoff schedule (deterministic for a fixed seed).
class Retry {
 public:
  Retry(const RetryPolicy& policy, std::uint64_t seed,
        Deadline deadline = Deadline::Infinite())
      : policy_(policy),
        rng_(seed),
        deadline_(deadline),
        next_backoff_(policy.initial_backoff_seconds) {}

  /// True while another attempt may start: attempt budget left, deadline
  /// alive, and — for attempts after the first, when the policy carries a
  /// cluster-wide RetryBudget — a token claimable. The token is claimed
  /// here (at most one per approved retry; a held token survives repeated
  /// calls) and consumed by BeginAttempt(), so every started retry
  /// accounts for exactly one budget draw.
  bool ShouldRetry() {
    if (attempts_started_ >= policy_.max_attempts || deadline_.Expired()) {
      return false;
    }
    if (attempts_started_ > 0 && policy_.budget != nullptr &&
        !token_held_) {
      token_held_ = policy_.budget->TryAcquire();
      if (!token_held_) {
        budget_exhausted_ = true;
        return false;
      }
    }
    return true;
  }

  /// Records the start of an attempt; returns its 0-based index.
  /// Requires ShouldRetry().
  int BeginAttempt() {
    PARQO_CHECK(ShouldRetry());
    token_held_ = false;
    return attempts_started_++;
  }

  int attempts_started() const { return attempts_started_; }
  const Deadline& deadline() const { return deadline_; }
  /// True when the retry loop stopped because the shared RetryBudget ran
  /// dry (as opposed to per-query attempts or the deadline) — callers
  /// surface this in the typed kUnavailable message.
  bool budget_exhausted() const { return budget_exhausted_; }

  /// The jittered backoff to wait before the next attempt. Clamped to
  /// [0, max_backoff_seconds] — the exponential growth saturates instead
  /// of overflowing — and never longer than the deadline's remainder.
  double NextBackoffSeconds() {
    double base = next_backoff_;
    if (base > policy_.max_backoff_seconds) {
      base = policy_.max_backoff_seconds;
    }
    // Saturating growth: once base hits the cap the product may be
    // +inf for extreme multipliers; the min() below absorbs it.
    double grown = base * policy_.backoff_multiplier;
    next_backoff_ = grown < policy_.max_backoff_seconds
                        ? grown
                        : policy_.max_backoff_seconds;
    double jitter = 1.0 + policy_.jitter_fraction *
                              (2.0 * rng_.UniformDouble() - 1.0);
    double wait = base * jitter;
    if (wait < 0) wait = 0;
    if (wait > policy_.max_backoff_seconds) {
      wait = policy_.max_backoff_seconds;
    }
    double remaining = deadline_.RemainingSeconds();
    return wait < remaining ? wait : remaining;
  }

 private:
  RetryPolicy policy_;
  Rng rng_;
  Deadline deadline_;
  int attempts_started_ = 0;
  double next_backoff_;
  bool token_held_ = false;
  bool budget_exhausted_ = false;
};

/// The codebase's single sanctioned sleep (see the naked-sleep rule in
/// tools/parqo_lint.py): straggler injection and retry backoff both wait
/// through here. No-op for non-positive durations.
void SleepSeconds(double seconds);

}  // namespace parqo

#endif  // PARQO_COMMON_FAULT_H_
