#include "common/metrics.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace parqo {

namespace metrics_internal {
std::atomic<bool> g_enabled{false};
}  // namespace metrics_internal

void SetMetricsEnabled(bool enabled) {
  metrics_internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

namespace {

// Bucket index for v: 32 + floor(log2(v)), clamped to [0, 63].
int BucketIndex(double v) {
  if (!(v > 0) || !std::isfinite(v)) return 0;
  int exp = std::ilogb(v) + 32;
  if (exp < 0) return 0;
  if (exp >= MetricHistogram::kNumBuckets) {
    return MetricHistogram::kNumBuckets - 1;
  }
  return exp;
}

void AtomicAdd(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AppendJsonNumber(std::string& out, double v) {
  char buf[64];
  if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "null");
  }
  out += buf;
}

}  // namespace

MetricHistogram::MetricHistogram()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void MetricHistogram::Observe(double v) {
  if (!MetricsEnabled()) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, v);
  AtomicMin(min_, v);
  AtomicMax(max_, v);
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
}

double MetricHistogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double MetricHistogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double MetricHistogram::BucketUpperBound(int i) {
  return std::ldexp(1.0, i - 31);
}

void MetricHistogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked intentionally: instruments must outlive static destructors of
  // translation units that still flush metrics at exit.
  static MetricsRegistry* registry =
      new MetricsRegistry();  // parqo-lint: allow(naked-new) leaked singleton
  return *registry;
}

MetricCounter& MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<MetricCounter>())
             .first;
  }
  return *it->second;
}

MetricGauge& MetricsRegistry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<MetricGauge>())
             .first;
  }
  return *it->second;
}

MetricHistogram& MetricsRegistry::histogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<MetricHistogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramEntry e;
    e.name = name;
    e.count = h->count();
    e.sum = h->sum();
    e.min = h->min();
    e.max = h->max();
    for (int i = 0; i < MetricHistogram::kNumBuckets; ++i) {
      std::uint64_t n = h->bucket(i);
      if (n > 0) {
        e.buckets.emplace_back(MetricHistogram::BucketUpperBound(i), n);
      }
    }
    snap.histograms.push_back(std::move(e));
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const CounterEntry& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const CounterEntry& c : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + c.name + "\": " + std::to_string(c.value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const GaugeEntry& g : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + g.name + "\": ";
    AppendJsonNumber(out, g.value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const HistogramEntry& h : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + h.name + "\": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": ";
    AppendJsonNumber(out, h.sum);
    out += ", \"min\": ";
    AppendJsonNumber(out, h.min);
    out += ", \"max\": ";
    AppendJsonNumber(out, h.max);
    out += ", \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ", ";
      out += "[";
      AppendJsonNumber(out, h.buckets[i].first);
      out += ", " + std::to_string(h.buckets[i].second) + "]";
    }
    out += "]}";
  }
  out += "\n  }\n}";
  return out;
}

}  // namespace parqo
