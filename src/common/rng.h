// Deterministic pseudo-random number generation for workload generators and
// property tests. All experiment outputs must be reproducible from a seed,
// so generators take an explicit Rng rather than using global state.

#ifndef PARQO_COMMON_RNG_H_
#define PARQO_COMMON_RNG_H_

#include <cstdint>

namespace parqo {

/// SplitMix64: tiny, fast, and passes BigCrush for this usage; good enough
/// for workload synthesis (not for cryptography).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  std::int64_t Uniform(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    Next() % static_cast<std::uint64_t>(hi - lo + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Zipf-like skewed pick in [0, n): smaller indexes are more likely.
  /// Used to give generated datasets realistic value-frequency skew.
  std::int64_t Skewed(std::int64_t n) {
    double u = UniformDouble();
    return static_cast<std::int64_t>(u * u * static_cast<double>(n));
  }

 private:
  std::uint64_t state_;
};

}  // namespace parqo

#endif  // PARQO_COMMON_RNG_H_
