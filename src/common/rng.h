// Deterministic pseudo-random number generation for workload generators and
// property tests. All experiment outputs must be reproducible from a seed,
// so generators take an explicit Rng rather than using global state.

#ifndef PARQO_COMMON_RNG_H_
#define PARQO_COMMON_RNG_H_

#include <cstdint>

namespace parqo {

/// SplitMix64: tiny, fast, and passes BigCrush for this usage; good enough
/// for workload synthesis (not for cryptography).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi. Unbiased:
  /// draws below the rejection threshold (2^64 mod range, so with
  /// probability < range/2^64) consume another Next(). All arithmetic is
  /// unsigned and fully standard-defined, so streams are identical across
  /// platforms; for the small ranges the workload generators use, the
  /// threshold is a handful of values out of 2^64 and the pinned golden
  /// streams are unchanged (asserted by RngTest.GoldenStreamsUnchanged).
  std::int64_t Uniform(std::int64_t lo, std::int64_t hi) {
    std::uint64_t range = static_cast<std::uint64_t>(hi) -
                          static_cast<std::uint64_t>(lo) + 1;
    // range == 0 means [lo, hi] spans the full int64 domain (the old
    // `Next() % range` divided by zero here): every 64-bit draw is a
    // valid sample.
    if (range == 0) return static_cast<std::int64_t>(Next());
    std::uint64_t threshold = (0 - range) % range;
    std::uint64_t z;
    do {
      z = Next();
    } while (z < threshold);
    // Unsigned add wraps correctly even when lo < 0 and the offset
    // exceeds the signed max (e.g. hi - lo >= 2^63).
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                     z % range);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Zipf-like skewed pick in [0, n): smaller indexes are more likely.
  /// Used to give generated datasets realistic value-frequency skew.
  std::int64_t Skewed(std::int64_t n) {
    double u = UniformDouble();
    return static_cast<std::int64_t>(u * u * static_cast<double>(n));
  }

 private:
  std::uint64_t state_;
};

}  // namespace parqo

#endif  // PARQO_COMMON_RNG_H_
