// Process-wide metrics registry: named counters, gauges, and log-bucketed
// histograms behind one global enable flag. The registry exists so the
// optimizer, estimator, executor, and partitioners can report what they
// did (memo hit rates, per-phase wall time, shipped rows) without
// threading a sink object through every layer — `parqo_report`, the
// benches, and tests read it back via Snapshot()/ToJson().
//
// Cost contract: when collection is disabled (the default) every update
// is a single relaxed load plus a predictable branch, so instrumented hot
// paths stay within noise of uninstrumented ones (bench_micro's
// BM_MetricCounter measures both sides). When enabled, updates are one
// relaxed atomic RMW on a cache line owned by the metric. Instruments are
// created on first use and never destroyed; references returned by the
// registry stay valid for the life of the process, so hot paths should
// look up once (e.g. into a static or a member) and update through the
// reference.

#ifndef PARQO_COMMON_METRICS_H_
#define PARQO_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"

namespace parqo {

namespace metrics_internal {
extern std::atomic<bool> g_enabled;
}  // namespace metrics_internal

/// Global collection switch. Off by default; `parqo_report`, bench_main,
/// and the metrics tests turn it on.
inline bool MetricsEnabled() {
  return metrics_internal::g_enabled.load(std::memory_order_relaxed);
}
void SetMetricsEnabled(bool enabled);

/// Monotonically increasing event count.
class MetricCounter {
 public:
  void Add(std::uint64_t n = 1) {
    if (MetricsEnabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. a replication factor).
class MetricGauge {
 public:
  void Set(double v) {
    if (MetricsEnabled()) value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<double> value_{0.0};
};

/// Distribution of non-negative samples: count/sum/min/max plus 64
/// power-of-two buckets covering [2^-32, 2^32) (bucket 0 additionally
/// absorbs zero and sub-2^-32 samples).
class MetricHistogram {
 public:
  static constexpr int kNumBuckets = 64;

  MetricHistogram();

  void Observe(double v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 while empty (the internal sentinels are +/-infinity).
  double min() const;
  double max() const;
  std::uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound of bucket i's value range (2^(i-31)).
  static double BucketUpperBound(int i);
  void Reset();

 private:
  alignas(64) std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;  // +infinity while empty; see ctor
  std::atomic<double> max_;  // -infinity while empty
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
};

/// Point-in-time copy of every registered instrument, for reporting.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0;
  };
  struct HistogramEntry {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0, min = 0, max = 0;
    /// (bucket upper bound, count) for non-empty buckets only.
    std::vector<std::pair<double, std::uint64_t>> buckets;
  };

  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string ToJson() const;
  /// Value of a counter by name; 0 when absent (for tests/benches).
  std::uint64_t CounterValue(std::string_view name) const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates; the reference is valid forever.
  MetricCounter& counter(std::string_view name);
  MetricGauge& gauge(std::string_view name);
  MetricHistogram& histogram(std::string_view name);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every instrument (names stay registered).
  void ResetAll();

 private:
  /// Leaf lock of the hierarchy: guards only the name -> instrument maps
  /// (instrument updates themselves are lock-free atomics).
  mutable Mutex mu_{LockRank::kMetrics};
  std::map<std::string, std::unique_ptr<MetricCounter>, std::less<>>
      counters_ PARQO_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<MetricGauge>, std::less<>> gauges_
      PARQO_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<MetricHistogram>, std::less<>>
      histograms_ PARQO_GUARDED_BY(mu_);
};

}  // namespace parqo

#endif  // PARQO_COMMON_METRICS_H_
