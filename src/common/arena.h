// Bump-pointer region allocator for the enumeration hot path.
//
// Top-down CMD enumeration constructs millions of candidate plan nodes on
// dense/cycle queries and discards all but one; paying a heap allocation
// plus two atomic refcount operations per candidate (the shared_ptr path)
// dominates optimization time. An Arena turns each candidate into a
// pointer bump: allocations come out of geometrically reused blocks, are
// never individually freed, and die together when the arena does.
//
// Lifetime rules (see DESIGN.md §12):
//   * Everything allocated here must be trivially destructible — New<T>
//     enforces it — because Reset()/~Arena() run no destructors.
//   * Reset() is O(#blocks): it retains every block and rewinds the bump
//     pointer, so a warm arena allocates without touching malloc at all.
//   * Arenas are single-threaded. Concurrent enumeration gives each
//     worker its own arena; cross-arena *reads* of published nodes are
//     fine as long as every arena outlives the run (td_cmd_core keeps
//     its chunk arenas alive for the lifetime of the core, since memo
//     entries are handed across workers).
//
// Under AddressSanitizer every block is poisoned on creation and on
// Reset(), and each allocation unpoisons exactly its own bytes, so
// use-after-reset and inter-allocation overflows fault immediately
// (arena_test has the death tests).

#ifndef PARQO_COMMON_ARENA_H_
#define PARQO_COMMON_ARENA_H_

#include <cstddef>
#include <memory>
#include <new>  // parqo-lint: allow(naked-new) header for placement new
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"

#if defined(__SANITIZE_ADDRESS__)
#define PARQO_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PARQO_ASAN 1
#endif
#endif

#if defined(PARQO_ASAN)
#include <sanitizer/asan_interface.h>
#define PARQO_ARENA_POISON(addr, size) ASAN_POISON_MEMORY_REGION(addr, size)
#define PARQO_ARENA_UNPOISON(addr, size) \
  ASAN_UNPOISON_MEMORY_REGION(addr, size)
#else
#define PARQO_ARENA_POISON(addr, size) ((void)(addr), (void)(size))
#define PARQO_ARENA_UNPOISON(addr, size) ((void)(addr), (void)(size))
#endif

namespace parqo {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = std::size_t{1} << 16;

  /// Pad under ASan so a sequential overflow lands on poisoned bytes
  /// instead of the next candidate node.
#if defined(PARQO_ASAN)
  static constexpr std::size_t kRedzone = 8;
#else
  static constexpr std::size_t kRedzone = 0;
#endif

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw allocation; `align` must be a power of two. Never returns null.
  /// The in-block fast path is inline — a mask, a compare, and a bump —
  /// because this is the per-candidate cost the whole design is about;
  /// crossing a block boundary takes the out-of-line slow path.
  void* Allocate(std::size_t size, std::size_t align) {
    PARQO_DCHECK(align > 0 && (align & (align - 1)) == 0);
    if (size == 0) size = 1;
    std::uintptr_t p = reinterpret_cast<std::uintptr_t>(ptr_);
    std::uintptr_t aligned = (p + align - 1) & ~(std::uintptr_t{align} - 1);
    std::size_t needed = (aligned - p) + size + kRedzone;
    if (ptr_ == nullptr ||
        needed > static_cast<std::size_t>(end_ - ptr_)) {
      return AllocateSlow(size, align);
    }
    ptr_ += needed;
    bytes_used_ += size;
    void* out = reinterpret_cast<void*>(aligned);
    PARQO_ARENA_UNPOISON(out, size);
    return out;
  }

  /// Constructs a T in the arena. T must be trivially destructible: the
  /// arena never runs destructors.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena-allocated types must not need destruction");
    // parqo-lint: allow(naked-new) placement new into the arena region
    return ::new (Allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// Uninitialized array of n trivially destructible (and, since callers
  /// copy into it raw, trivially copyable) elements.
  template <typename T>
  T* NewArray(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T> &&
                  std::is_trivially_copyable_v<T>);
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds every block without releasing memory. All prior allocations
  /// become invalid (and poisoned under ASan).
  void Reset();

  /// Bytes handed out since construction/Reset (excludes alignment pad).
  std::size_t bytes_used() const { return bytes_used_; }
  /// Total capacity of all retained blocks.
  std::size_t bytes_reserved() const { return bytes_reserved_; }
  std::size_t num_blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  /// Block-boundary path of Allocate: finds or creates a block that fits
  /// and retries the bump there.
  void* AllocateSlow(std::size_t size, std::size_t align);

  /// Finds or creates a block that fits `size` and makes it current.
  void NextBlock(std::size_t size);

  std::vector<Block> blocks_;
  std::size_t current_ = 0;  // active block index (meaningless when empty)
  char* ptr_ = nullptr;      // bump pointer into the active block
  char* end_ = nullptr;
  std::size_t block_bytes_;
  std::size_t bytes_used_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace parqo

#endif  // PARQO_COMMON_ARENA_H_
