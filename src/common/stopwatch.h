// Wall-clock stopwatch and deadlines used by the optimization-time
// experiments (Table IV, Figures 6a and 7), optimizer timeouts, and the
// fault-recovery retry policy. Everything here is steady_clock on purpose:
// injected slowness (common/fault.h) and NTP adjustments must never warp
// elapsed-time or deadline math, so no conversion through system_clock is
// allowed anywhere in timeout handling.

#ifndef PARQO_COMMON_STOPWATCH_H_
#define PARQO_COMMON_STOPWATCH_H_

#include <chrono>
#include <limits>

namespace parqo {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A monotonic point in time after which work should give up. Cheap to
/// copy; the infinite deadline never expires and is the default everywhere
/// so enabling the machinery costs one comparison on probe.
class Deadline {
 public:
  /// Never expires.
  Deadline() = default;
  static Deadline Infinite() { return Deadline(); }

  /// Expires `seconds` of steady-clock time from now. Non-positive values
  /// produce an already-expired deadline.
  static Deadline AfterSeconds(double seconds) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(seconds));
    return d;
  }

  bool IsInfinite() const { return infinite_; }

  bool Expired() const { return !infinite_ && Clock::now() >= at_; }

  /// Seconds until expiry: +infinity for the infinite deadline, clamped
  /// at 0 once expired.
  double RemainingSeconds() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    double s = std::chrono::duration<double>(at_ - Clock::now()).count();
    return s > 0 ? s : 0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool infinite_ = true;
  Clock::time_point at_{};
};

}  // namespace parqo

#endif  // PARQO_COMMON_STOPWATCH_H_
