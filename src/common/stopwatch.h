// Wall-clock stopwatch used by the optimization-time experiments
// (Table IV, Figures 6a and 7) and by optimizer timeouts.

#ifndef PARQO_COMMON_STOPWATCH_H_
#define PARQO_COMMON_STOPWATCH_H_

#include <chrono>

namespace parqo {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace parqo

#endif  // PARQO_COMMON_STOPWATCH_H_
