// Fixed-size worker pool shared by the parallel optimizer paths and the
// simulated cluster. Workers are started once and reused — submitting work
// never spawns a thread — which is what lets the batch optimizer sustain a
// stream of queries (the Partout/PHD-Store workload shape) without
// thread-churn, and caps the executor's per-node fan-out.
//
// ParallelFor is the only blocking primitive and it is deadlock-free under
// nesting: the caller drains items itself while pool workers help, so
// progress never depends on a pool slot being free. This matters because
// an inter-query batch task may itself run an intra-query parallel
// enumeration on the same pool.

#ifndef PARQO_COMMON_THREAD_POOL_H_
#define PARQO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace parqo {

class ThreadPool {
 public:
  /// Starts `num_threads` workers; values < 1 are clamped to 1.
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains queued tasks, then joins the workers (via Shutdown).
  ~ThreadPool();

  int size() const { return static_cast<int>(threads_.size()); }

  /// Stops the pool: drains every task already queued, then joins the
  /// workers. Idempotent and safe to call concurrently with Submit and
  /// ParallelFor from other threads (concurrent callers of Shutdown block
  /// until the first one finishes) — only destruction itself requires
  /// external quiescence. After Shutdown, Submit runs tasks inline on the
  /// calling thread and ParallelFor degrades to a serial loop, so no work
  /// handed to a stopped pool is ever silently lost. The serving layer's
  /// session pipeline relies on this: a session that races server
  /// teardown must complete its task, not hang on a task nobody will run.
  void Shutdown();

  /// Enqueues a fire-and-forget task. If the pool has been shut down (or
  /// is shutting down), the task runs inline on the calling thread before
  /// Submit returns — it is never dropped.
  void Submit(std::function<void()> task);

  /// Runs fn(0), ..., fn(n-1), distributed over up to `max_workers`
  /// threads (0 = no extra cap beyond the pool size). The calling thread
  /// participates, so this never deadlocks even when invoked from inside
  /// a pool task; it returns once every index has completed.
  void ParallelFor(int n, const std::function<void(int)>& fn,
                   int max_workers = 0);

  /// Process-wide pool sized to hardware_concurrency. Created on first
  /// use and intentionally never destroyed (workers must outlive static
  /// destruction order).
  static ThreadPool& Global();

  /// max(1, std::thread::hardware_concurrency()).
  static int DefaultConcurrency();

 private:
  void WorkerLoop();

  /// Written once in the constructor, joined exactly once through
  /// shutdown_once_; size() reads only the never-changing length.
  // parqo-lint: allow(guarded-field) written in ctor only, joined via shutdown_once_
  std::vector<std::thread> threads_;
  Mutex mu_{LockRank::kPool};
  std::deque<std::function<void()>> queue_ PARQO_GUARDED_BY(mu_);
  bool stop_ PARQO_GUARDED_BY(mu_) = false;
  std::condition_variable cv_;
  /// Serializes Shutdown: the first caller joins the workers, concurrent
  /// callers (including the destructor) block until it is done.
  std::once_flag shutdown_once_;
};

}  // namespace parqo

#endif  // PARQO_COMMON_THREAD_POOL_H_
