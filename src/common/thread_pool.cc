#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace parqo {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  threads_.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    {
      MutexLock lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    // Workers drain the queue before exiting (see WorkerLoop), so every
    // task enqueued before stop_ was set still runs exactly once.
    for (std::thread& t : threads_) t.join();
  });
}

void ThreadPool::Submit(std::function<void()> task) {
  bool run_inline = false;
  {
    MutexLock lock(mu_);
    if (stop_) {
      // The pool is stopping or stopped: the workers may already have
      // observed an empty queue and exited, so an enqueued task could sit
      // in the queue forever — the submit-after-shutdown hazard the
      // serving pipeline exposed. Run it inline instead; fire-and-forget
      // work is never lost, and a ParallelFor helper submitted this way
      // simply drains on the calling thread (serial but correct).
      run_inline = true;
    } else {
      queue_.push_back(std::move(task));
    }
  }
  if (run_inline) {
    task();
    return;
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) lock.Wait(cv_);
      if (queue_.empty()) return;  // stop_ set and nothing left to run.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn,
                             int max_workers) {
  if (n <= 0) return;
  int helpers = std::min(size(), n - 1);
  if (max_workers > 0) helpers = std::min(helpers, max_workers - 1);
  if (helpers <= 0) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared by the caller and the helper tasks; shared_ptr so a helper that
  // wakes up after all items are done (and ParallelFor has returned) still
  // has valid state to observe.
  struct State {
    // parqo-lint: allow(guarded-field) written before the state is shared
    const std::function<void(int)>* fn = nullptr;
    // parqo-lint: allow(guarded-field) written before the state is shared
    int n = 0;
    std::atomic<int> next{0};
    std::atomic<int> done{0};
    /// The completion latch only; the work counters above are atomics.
    Mutex mu{LockRank::kPoolJoin};
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  state->fn = &fn;
  state->n = n;

  auto drain = [](State& s) {
    int i;
    while ((i = s.next.fetch_add(1, std::memory_order_relaxed)) < s.n) {
      (*s.fn)(i);
      if (s.done.fetch_add(1, std::memory_order_acq_rel) + 1 == s.n) {
        MutexLock lock(s.mu);
        s.cv.notify_all();
      }
    }
  };

  for (int h = 0; h < helpers; ++h) {
    Submit([state, drain] { drain(*state); });
  }
  drain(*state);

  MutexLock lock(state->mu);
  while (state->done.load(std::memory_order_acquire) < state->n) {
    lock.Wait(state->cv);
  }
}

int ThreadPool::DefaultConcurrency() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool& ThreadPool::Global() {
  // Leaked intentionally: worker threads may still be parked in the pool
  // during static destruction.
  // parqo-lint: allow(naked-new) leaked singleton
  static ThreadPool* pool = new ThreadPool(DefaultConcurrency());
  return *pool;
}

}  // namespace parqo
