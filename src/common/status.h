// Lightweight error propagation for the library's fallible entry points
// (parsing, file IO, configuration). Library code does not throw; internal
// invariant violations use PARQO_CHECK which aborts with a message.

#ifndef PARQO_COMMON_STATUS_H_
#define PARQO_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace parqo {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  /// A recoverable-resource failure that survived every retry (e.g. the
  /// simulated cluster lost more nodes than the retry policy tolerates).
  /// Callers may re-submit the whole operation; the result is never
  /// partially wrong, it is absent.
  kUnavailable,
  /// A deadline expired before the operation could finish.
  kDeadlineExceeded,
  /// Admission control turned the request away: the serving layer is at
  /// its bounded in-flight capacity. Nothing was attempted; the caller
  /// should back off and re-submit. Distinct from kUnavailable, which
  /// means the work *ran* and exhausted its retries.
  kOverloaded,
};

/// A success-or-error value; cheap to copy on the success path.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Overloaded(std::string m) {
    return Status(StatusCode::kOverloaded, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a T or an error Status. Mirrors the shape of absl::StatusOr.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: intended implicit
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() { return *value_; }
  const T& operator*() const { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

#define PARQO_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::parqo::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (false)

}  // namespace parqo

#endif  // PARQO_COMMON_STATUS_H_
