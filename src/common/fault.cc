#include "common/fault.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "common/metrics.h"

namespace parqo {

FaultPlan::FaultPlan(int num_nodes) : nodes_(num_nodes) {
  PARQO_CHECK(num_nodes > 0);
}

FaultPlan::FaultPlan(std::uint64_t seed, int num_nodes,
                     const FaultPlanConfig& config)
    : FaultPlan(num_nodes) {
  Rng rng(seed);
  for (int i = 0; i < num_nodes; ++i) {
    if (rng.Bernoulli(config.crash_probability)) {
      std::uint64_t window = config.crash_window > 0 ? config.crash_window : 1;
      CrashNodeAtOp(i, static_cast<std::uint64_t>(rng.Uniform(
                           0, static_cast<std::int64_t>(window) - 1)));
    }
    if (rng.Bernoulli(config.slow_probability)) {
      SlowNode(i, config.slow_seconds);
    }
  }
  if (config.drop_probability > 0) {
    DropShipments(config.drop_probability, rng.Next());
  }
}

void FaultPlan::CrashNodeAtOp(int node, std::uint64_t ordinal) {
  PARQO_CHECK(node >= 0 && node < num_nodes());
  nodes_[node].crash_at.store(ordinal, std::memory_order_relaxed);
}

void FaultPlan::SlowNode(int node, double seconds) {
  PARQO_CHECK(node >= 0 && node < num_nodes());
  nodes_[node].slow_seconds = seconds;
}

void FaultPlan::DropShipments(double p, std::uint64_t seed) {
  PARQO_CHECK(p >= 0 && p <= 1);
  drop_probability_ = p;
  MutexLock lock(drop_mu_);
  drop_rng_ = Rng(seed);
}

void FaultPlan::SickNode(int node) {
  PARQO_CHECK(node >= 0 && node < num_nodes());
  nodes_[node].sick.store(1, std::memory_order_relaxed);
}

void FaultPlan::CureNode(int node) {
  PARQO_CHECK(node >= 0 && node < num_nodes());
  nodes_[node].sick.store(0, std::memory_order_relaxed);
}

double FaultPlan::PeekDelaySeconds(int node) const {
  PARQO_CHECK(node >= 0 && node < num_nodes());
  return nodes_[node].slow_seconds;
}

bool FaultPlan::IsSick(int node) const {
  PARQO_CHECK(node >= 0 && node < num_nodes());
  return nodes_[node].sick.load(std::memory_order_relaxed) != 0;
}

bool FaultPlan::BeginNodeOp(int node) {
  PARQO_CHECK(node >= 0 && node < num_nodes());
  NodeSchedule& sched = nodes_[node];
  // A sick node refuses the probe outright: no straggler sleep, no
  // operator-counter advance, no one-shot event consumed. Persistent by
  // design — the detection repeats every query until CureNode().
  if (sched.sick.load(std::memory_order_relaxed) != 0) {
    sick_refusals_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (sched.slow_seconds > 0) {
    slow_ops_.fetch_add(1, std::memory_order_relaxed);
    SleepSeconds(sched.slow_seconds);
  }
  std::uint64_t op = sched.ops.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t crash_at = sched.crash_at.load(std::memory_order_relaxed);
  if (op < crash_at) return true;
  // The scheduled ordinal was reached (or overshot, when several work
  // items race on one node): fire at most once.
  if (sched.crash_at.exchange(kNever, std::memory_order_relaxed) == kNever) {
    return true;  // a racing work item already consumed the event
  }
  crashes_fired_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

bool FaultPlan::DeliverShipment() {
  if (drop_probability_ <= 0) return true;
  bool dropped;
  {
    MutexLock lock(drop_mu_);
    dropped = drop_rng_.Bernoulli(drop_probability_);
  }
  if (dropped) drops_fired_.fetch_add(1, std::memory_order_relaxed);
  return !dropped;
}

std::uint64_t RetryBudget::AllowanceNow() const {
  if (refill_per_second_ <= 0) return capacity_;
  double accrued = since_.ElapsedSeconds() * refill_per_second_;
  // Saturate instead of overflowing for long-lived processes.
  if (accrued >= static_cast<double>(~std::uint64_t{0} - capacity_)) {
    return ~std::uint64_t{0};
  }
  return capacity_ + static_cast<std::uint64_t>(std::floor(accrued));
}

bool RetryBudget::TryAcquire() {
  std::uint64_t cur = acquired_.load(std::memory_order_relaxed);
  for (;;) {
    if (cur >= AllowanceNow()) {
      denied_.fetch_add(1, std::memory_order_relaxed);
      if (MetricsEnabled()) {
        MetricsRegistry::Global()
            .counter("server.retry_budget.denied")
            .Add(1);
      }
      return false;
    }
    if (acquired_.compare_exchange_weak(cur, cur + 1,
                                        std::memory_order_relaxed)) {
      if (MetricsEnabled()) {
        MetricsRegistry::Global()
            .counter("server.retry_budget.acquired")
            .Add(1);
      }
      return true;
    }
  }
}

std::uint64_t RetryBudget::remaining() const {
  std::uint64_t allowance = AllowanceNow();
  std::uint64_t used = acquired_.load(std::memory_order_relaxed);
  return used >= allowance ? 0 : allowance - used;
}

void SleepSeconds(double seconds) {
  if (seconds <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace parqo
