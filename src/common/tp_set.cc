#include "common/tp_set.h"

#include <string>

namespace parqo {

std::string TpSet::ToString() const {
  std::string out = "{";
  bool first = true;
  for (int i : *this) {
    if (!first) out += ", ";
    out += std::to_string(i);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace parqo
