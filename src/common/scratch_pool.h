// Depth-indexed pool of reusable scratch vectors.
//
// The enumeration recursion (Algorithms 1-3) needs a handful of temporary
// vectors per level — the cmd part stack, the cbd component lists, the
// per-division child plans. Allocating them per call costs a malloc/free
// pair per enumerated division; pooling them per worker makes the steady
// state allocation-free: Acquire() hands back the vector used the last
// time the recursion was at this depth, cleared but with its capacity
// intact.
//
// Usage is strictly LIFO (enforced by the RAII Lease), which is exactly
// the shape of a recursive enumeration. Pools are single-threaded; each
// enumeration worker owns its own (see td_cmd_core.h's Ctx).

#ifndef PARQO_COMMON_SCRATCH_POOL_H_
#define PARQO_COMMON_SCRATCH_POOL_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "common/check.h"

namespace parqo {

template <typename T>
class ScratchPool {
 public:
  /// RAII handle on one pooled vector; behaves like a vector reference.
  class Lease {
   public:
    explicit Lease(ScratchPool& pool)
        : pool_(&pool), vec_(&pool.Acquire()) {}
    ~Lease() { pool_->Release(); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    std::vector<T>& operator*() const { return *vec_; }
    std::vector<T>* operator->() const { return vec_; }
    std::vector<T>* get() const { return vec_; }

   private:
    ScratchPool* pool_;
    std::vector<T>* vec_;
  };

  explicit ScratchPool(std::size_t reserve_per_vector = 16)
      : reserve_(reserve_per_vector) {}

  /// A cleared vector dedicated to the current depth. Valid until the
  /// matching Release(); releases must be LIFO (use Lease).
  std::vector<T>& Acquire() {
    if (depth_ == pool_.size()) {
      pool_.emplace_back();
      pool_.back().reserve(reserve_);
    }
    std::vector<T>& v = pool_[depth_++];
    v.clear();
    return v;
  }

  void Release() {
    PARQO_DCHECK(depth_ > 0);
    --depth_;
  }

  std::size_t depth() const { return depth_; }

 private:
  // deque: references handed out by Acquire stay valid while deeper
  // recursion levels grow the pool.
  std::deque<std::vector<T>> pool_;
  std::size_t depth_ = 0;
  std::size_t reserve_;
};

}  // namespace parqo

#endif  // PARQO_COMMON_SCRATCH_POOL_H_
