// Scoped trace spans serializing to the Chrome trace-event format
// (load chrome://tracing or https://ui.perfetto.dev on the output of
// TraceRecorder::ToChromeJson). Spans mark coarse phases — parse,
// partition, optimize, one executor operator — not per-tuple work; a
// disabled recorder (the default) makes constructing a span one relaxed
// load and no allocation.
//
// Events carry a timestamp relative to the first enabled moment and the
// recording thread's id, so the viewer lays concurrent optimizer workers
// out on separate rows.

#ifndef PARQO_COMMON_TRACE_H_
#define PARQO_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"

namespace parqo {

class TraceRecorder {
 public:
  struct Event {
    std::string name;
    const char* category;  // static string
    std::int64_t ts_us = 0;
    std::int64_t dur_us = 0;
    std::uint32_t tid = 0;
  };

  static TraceRecorder& Global();

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records one complete ("ph":"X") event. Thread-safe.
  void Record(std::string name, const char* category, std::int64_t ts_us,
              std::int64_t dur_us);

  std::size_t NumEvents() const;
  void Clear();

  /// {"traceEvents": [...]} — the Chrome trace-event JSON envelope.
  std::string ToChromeJson() const;

  /// Microseconds since the process-wide trace epoch.
  static std::int64_t NowMicros();

 private:
  std::atomic<bool> enabled_{false};
  /// Leaf lock: guards the event buffer only; never held across a call
  /// into any other subsystem.
  mutable Mutex mu_{LockRank::kTrace};
  std::vector<Event> events_ PARQO_GUARDED_BY(mu_);
};

/// RAII span: records [construction, destruction) on the global recorder
/// when tracing is enabled. The name is only copied when recording.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name, const char* category = "parqo")
      : active_(TraceRecorder::Global().enabled()) {
    if (active_) {
      name_ = name;
      category_ = category;
      start_us_ = TraceRecorder::NowMicros();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (active_) {
      TraceRecorder::Global().Record(std::move(name_), category_, start_us_,
                                     TraceRecorder::NowMicros() - start_us_);
    }
  }

 private:
  bool active_;
  std::string name_;
  const char* category_ = "";
  std::int64_t start_us_ = 0;
};

}  // namespace parqo

#endif  // PARQO_COMMON_TRACE_H_
