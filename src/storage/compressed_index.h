// Clustered compressed index over sorted three-component keys — the
// storage primitive behind every permutation index and aggregated count
// table (DESIGN.md section 17). Keys are stored in fixed-size leaf pages,
// delta + varbyte compressed over component gaps; an uncompressed page
// directory (first key, byte offset, entry count per page) drives
// lower_bound seeks, so a prefix-range scan decodes only the pages that
// overlap the range and a range COUNT decodes only the two boundary
// pages — interior pages are answered from the directory alone.
//
// Page entry encoding, after an absolute (k1, k2, k3) anchor per page:
// one tagged varbyte value whose low 2 bits say which key component
// changed first, followed by absolute varbytes for the components after
// it:
//
//   tag 0: (gap3 << 2)        — k1, k2 unchanged; gap3 == 0 keeps
//                               duplicates, so multisets round-trip
//   tag 1: (gap2 << 2) | 1, k3
//   tag 2: (gap1 << 2) | 2, k2, k3
//
// The common case — same k1/k2 group, small k3 gap — is one byte.

#ifndef PARQO_STORAGE_COMPRESSED_INDEX_H_
#define PARQO_STORAGE_COMPRESSED_INDEX_H_

#include <algorithm>
#include <compare>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "rdf/term.h"
#include "storage/varbyte.h"

namespace parqo {

/// Largest representable TermId; open range bounds use it as +infinity.
inline constexpr TermId kMaxTermId = 0xffffffffu;

/// A key in index component order (NOT triple order; dataset_index.h maps
/// permutations). Aggregated tables store a count as k3.
struct IndexKey {
  TermId k1 = 0;
  TermId k2 = 0;
  TermId k3 = 0;
  friend constexpr auto operator<=>(const IndexKey&,
                                    const IndexKey&) = default;
};

/// Entries per compressed leaf page. 1024 keeps a decoded page (12 KiB)
/// cache-resident and makes pages natural scan morsels.
inline constexpr std::size_t kLeafEntries = 1024;

class CompressedKeyIndex {
 public:
  /// Reusable per-caller decode buffer: one decoded page. Never shared
  /// across threads (the index itself is immutable after Build and safe
  /// for concurrent readers).
  struct Scratch {
    std::vector<IndexKey> keys;
  };

  CompressedKeyIndex() = default;

  /// Builds from keys sorted ascending; duplicates are allowed and
  /// preserved (per-node stores are multisets). Replaces prior contents.
  void Build(std::span<const IndexKey> sorted);

  std::size_t size() const { return n_; }
  std::size_t num_pages() const { return pages_.size(); }

  /// Compressed payload plus directory bytes.
  std::size_t ByteSize() const {
    return data_.size() + pages_.size() * sizeof(PageRef);
  }

  /// Pages overlapping [lo, hi]: [first, end) directory indexes.
  std::pair<std::size_t, std::size_t> PageSpan(const IndexKey& lo,
                                               const IndexKey& hi) const;

  /// Decodes page `page` and calls fn(std::span<const IndexKey>) on its
  /// entries within [lo, hi] (possibly empty span -> fn not called).
  template <typename Fn>
  void ScanPage(std::size_t page, const IndexKey& lo, const IndexKey& hi,
                Scratch& scratch, Fn&& fn) const {
    DecodePage(page, scratch);
    const IndexKey* b = scratch.keys.data();
    const IndexKey* e = b + scratch.keys.size();
    const IndexKey* lo_it = std::lower_bound(b, e, lo);
    const IndexKey* hi_it = std::upper_bound(lo_it, e, hi);
    if (lo_it != hi_it) {
      fn(std::span<const IndexKey>(lo_it,
                                   static_cast<std::size_t>(hi_it - lo_it)));
    }
  }

  /// Ordered scan of every entry in [lo, hi]; fn sees one ascending span
  /// per overlapping page.
  template <typename Fn>
  void ScanRange(const IndexKey& lo, const IndexKey& hi, Scratch& scratch,
                 Fn&& fn) const {
    auto [first, end] = PageSpan(lo, hi);
    for (std::size_t page = first; page < end; ++page) {
      ScanPage(page, lo, hi, scratch, fn);
    }
  }

  /// Exact number of entries in [lo, hi]. Interior pages are counted from
  /// the directory; at most two boundary pages are decoded.
  std::uint64_t CountRange(const IndexKey& lo, const IndexKey& hi,
                           Scratch& scratch) const;

 private:
  struct PageRef {
    IndexKey first;             // first key stored in the page
    std::uint32_t offset = 0;   // byte offset into data_
    std::uint32_t count = 0;    // entries in the page
  };

  void DecodePage(std::size_t page, Scratch& scratch) const;

  std::size_t n_ = 0;
  std::vector<std::uint8_t> data_;
  std::vector<PageRef> pages_;
};

}  // namespace parqo

#endif  // PARQO_STORAGE_COMPRESSED_INDEX_H_
