// RDF-3X-grade storage for one triple set (DESIGN.md section 17): four
// clustered permutation indexes (SPO, PSO, POS, OSP — every constant
// combination of a triple pattern maps to a contiguous prefix range of
// exactly one of them) plus aggregated count indexes that answer exact
// per-pattern cardinalities |tp| and distinct-binding counts B(tp, v) in
// O(log n) without touching permutation leaves:
//
//   PS -> count, PO -> count, OS -> count   (compressed pair tables)
//   S/P/O -> (count, distinct counts of the other two positions)
//   global: |T|, distinct S / P / O
//
// NodeStore builds one DatasetIndex per simulated node for scans;
// RdfGraph lazily builds one over the whole dataset for the statistics
// layer (stats/data_stats.cc).

#ifndef PARQO_STORAGE_DATASET_INDEX_H_
#define PARQO_STORAGE_DATASET_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "rdf/triple.h"
#include "storage/compressed_index.h"

namespace parqo {

/// The four clustered sort orders. Names give key component order: kPso
/// stores (p, s, o) as (k1, k2, k3).
enum class Perm { kSpo, kPso, kPos, kOsp };

/// Triple -> key in `perm` component order.
inline IndexKey PermKey(Perm perm, const Triple& t) {
  switch (perm) {
    case Perm::kSpo: return {t.s, t.p, t.o};
    case Perm::kPso: return {t.p, t.s, t.o};
    case Perm::kPos: return {t.p, t.o, t.s};
    case Perm::kOsp: return {t.o, t.s, t.p};
  }
  return {};
}

/// Key in `perm` component order -> triple.
inline Triple PermTriple(Perm perm, const IndexKey& k) {
  switch (perm) {
    case Perm::kSpo: return {k.k1, k.k2, k.k3};
    case Perm::kPso: return {k.k2, k.k1, k.k3};
    case Perm::kPos: return {k.k3, k.k1, k.k2};
    case Perm::kOsp: return {k.k2, k.k3, k.k1};
  }
  return {};
}

class DatasetIndex {
 public:
  /// Builds all permutations and aggregates. `triples` may be a multiset
  /// in any order; order and multiplicity are preserved per permutation.
  explicit DatasetIndex(std::span<const Triple> triples);

  DatasetIndex(const DatasetIndex&) = delete;
  DatasetIndex& operator=(const DatasetIndex&) = delete;
  DatasetIndex(DatasetIndex&&) = default;
  DatasetIndex& operator=(DatasetIndex&&) = default;

  std::size_t NumTriples() const { return n_; }

  const CompressedKeyIndex& perm(Perm p) const {
    switch (p) {
      case Perm::kSpo: return spo_;
      case Perm::kPso: return pso_;
      case Perm::kPos: return pos_;
      case Perm::kOsp: return osp_;
    }
    return spo_;
  }

  /// The permutation and key range answering a pattern with the given
  /// constants (kInvalidTermId = free position): every constant is pinned
  /// by the range prefix, so scans never re-filter on constants.
  struct RangeChoice {
    Perm perm = Perm::kSpo;
    IndexKey lo;
    IndexKey hi;
  };
  static RangeChoice ChooseRange(TermId s, TermId p, TermId o);

  /// Exact number of matches of the constant mask (kInvalidTermId =
  /// free). Pure aggregate/directory lookups except the all-constant
  /// case, which decodes one boundary page.
  std::uint64_t CountPattern(TermId s, TermId p, TermId o) const;

  /// Aggregated per-key statistics; zeros when the key does not occur.
  /// The distinct counts cover the other two triple positions in (s,p,o)
  /// order: StatsForS(s) = {count, distinct p, distinct o}, StatsForP(p)
  /// = {count, distinct s, distinct o}, StatsForO(o) = {count, distinct
  /// s, distinct p}.
  struct UnaryStats {
    std::uint64_t count = 0;
    std::uint64_t distinct_a = 0;
    std::uint64_t distinct_b = 0;
  };
  UnaryStats StatsForS(TermId s) const { return s_stats_.Find(s); }
  UnaryStats StatsForP(TermId p) const { return p_stats_.Find(p); }
  UnaryStats StatsForO(TermId o) const { return o_stats_.Find(o); }

  std::uint64_t distinct_s() const { return s_stats_.size(); }
  std::uint64_t distinct_p() const { return p_stats_.size(); }
  std::uint64_t distinct_o() const { return o_stats_.size(); }

  /// Ordered decode of every triple matching the constant mask
  /// (kInvalidTermId = free); fn(const Triple&) in the chosen
  /// permutation's key order.
  template <typename Fn>
  void ForEachMatch(TermId s, TermId p, TermId o,
                    CompressedKeyIndex::Scratch& scratch, Fn&& fn) const {
    const RangeChoice rc = ChooseRange(s, p, o);
    perm(rc.perm).ScanRange(rc.lo, rc.hi, scratch,
                            [&](std::span<const IndexKey> run) {
                              for (const IndexKey& k : run) {
                                fn(PermTriple(rc.perm, k));
                              }
                            });
  }

  /// Total compressed bytes: permutation pages + directories + aggregated
  /// pair tables + unary tables. The dual-sorted-vector layout this
  /// replaced was 2 * sizeof(Triple) = 24 bytes per triple.
  std::size_t ByteSize() const;
  std::size_t num_pages() const {
    return spo_.num_pages() + pso_.num_pages() + pos_.num_pages() +
           osp_.num_pages();
  }

 private:
  struct UnaryEntry {
    TermId key = 0;
    std::uint32_t count = 0;
    std::uint32_t distinct_a = 0;
    std::uint32_t distinct_b = 0;
  };

  /// Delta+varbyte compressed (key -> count, distinct_a, distinct_b)
  /// table: blocks of 64 entries, keys gap-encoded inside a block, with
  /// an uncompressed (first key, byte offset) directory for binary
  /// search. A typical entry is 4-6 bytes against the 16 of a raw
  /// UnaryEntry — on sparse per-node stores the unary tables hold nearly
  /// one entry per triple, so this is what keeps the whole index under
  /// the dual-vector 24 B/triple.
  class UnaryTable {
   public:
    void Build(std::span<const UnaryEntry> sorted);
    UnaryStats Find(TermId key) const;
    std::size_t size() const { return n_; }
    std::size_t ByteSize() const {
      return data_.size() + dir_.size() * sizeof(BlockRef);
    }

   private:
    struct BlockRef {
      TermId first = 0;
      std::uint32_t offset = 0;
    };
    static constexpr std::size_t kBlockEntries = 64;

    std::size_t n_ = 0;
    std::vector<std::uint8_t> data_;
    std::vector<BlockRef> dir_;
  };

  static std::uint64_t PairCount(const CompressedKeyIndex& pairs, TermId a,
                                 TermId b);

  std::size_t n_ = 0;
  CompressedKeyIndex spo_, pso_, pos_, osp_;
  /// Aggregated pair tables: entries (a, b, count) keyed on the leading
  /// two components of the matching permutation.
  CompressedKeyIndex ps_counts_;  // (p, s) -> count
  CompressedKeyIndex po_counts_;  // (p, o) -> count
  CompressedKeyIndex os_counts_;  // (o, s) -> count
  UnaryTable s_stats_, p_stats_, o_stats_;
};

}  // namespace parqo

#endif  // PARQO_STORAGE_DATASET_INDEX_H_
