// Variable-byte (VByte) codec: little-endian base-128 with a continuation
// bit per byte, the classic RDF-3X leaf encoding. Values below 128 cost
// one byte; a full 32-bit value costs at most five, a tagged 64-bit delta
// (compressed_index.h packs a 2-bit branch tag under the gap) at most ten.
// Encoder and decoder are paired per page, so the decoder never needs a
// length check: the page directory bounds every stream it walks.

#ifndef PARQO_STORAGE_VARBYTE_H_
#define PARQO_STORAGE_VARBYTE_H_

#include <cstdint>
#include <vector>

namespace parqo {

/// Appends `v` to `out` in base-128, low 7 bits first.
inline void VarbyteEncode(std::uint64_t v, std::vector<std::uint8_t>& out) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Decodes one value starting at `p`, advancing `p` past it.
inline std::uint64_t VarbyteDecode(const std::uint8_t*& p) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    std::uint8_t b = *p++;
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

/// Decodes a value known to fit 32 bits (TermIds and TermId gaps).
inline std::uint32_t VarbyteDecode32(const std::uint8_t*& p) {
  return static_cast<std::uint32_t>(VarbyteDecode(p));
}

}  // namespace parqo

#endif  // PARQO_STORAGE_VARBYTE_H_
