#include "storage/dataset_index.h"

#include <algorithm>
#include <utility>

namespace parqo {

DatasetIndex::DatasetIndex(std::span<const Triple> triples)
    : n_(triples.size()) {
  std::vector<IndexKey> keys(n_);
  auto fill_sort = [&](Perm perm) {
    for (std::size_t i = 0; i < n_; ++i) {
      keys[i] = PermKey(perm, triples[i]);
    }
    std::sort(keys.begin(), keys.end());
  };

  // One aggregation pass over a sorted permutation: per k1 run the total
  // count and the number of distinct k2 values (distinct_a), plus one
  // (k1, k2, run-length) pair entry per distinct (k1, k2) — already in
  // sorted order, ready for CompressedKeyIndex::Build.
  auto pass = [&](std::vector<UnaryEntry>* unary,
                  std::vector<IndexKey>* pairs) {
    if (unary != nullptr) unary->clear();
    if (pairs != nullptr) pairs->clear();
    std::size_t i = 0;
    while (i < n_) {
      const TermId k1 = keys[i].k1;
      UnaryEntry e;
      e.key = k1;
      std::size_t j = i;
      while (j < n_ && keys[j].k1 == k1) {
        const TermId k2 = keys[j].k2;
        std::size_t r = j;
        while (r < n_ && keys[r].k1 == k1 && keys[r].k2 == k2) ++r;
        ++e.distinct_a;
        if (pairs != nullptr) {
          pairs->push_back({k1, k2, static_cast<TermId>(r - j)});
        }
        j = r;
      }
      e.count = static_cast<std::uint32_t>(j - i);
      if (unary != nullptr) unary->push_back(e);
      i = j;
    }
  };

  // Re-keys (a, b, count) pair entries to (b, a, count) and writes each
  // b's pair-run length — the distinct count of a per b — into the
  // aligned unary table (both sorted by key, same key set).
  auto fill_distinct_b = [](std::vector<IndexKey>& pairs,
                            std::vector<UnaryEntry>& unary) {
    for (IndexKey& k : pairs) std::swap(k.k1, k.k2);
    std::sort(pairs.begin(), pairs.end());
    std::size_t i = 0;
    std::size_t u = 0;
    while (i < pairs.size()) {
      const TermId b = pairs[i].k1;
      std::size_t j = i;
      while (j < pairs.size() && pairs[j].k1 == b) ++j;
      while (u < unary.size() && unary[u].key < b) ++u;
      PARQO_CHECK(u < unary.size() && unary[u].key == b);
      unary[u].distinct_b = static_cast<std::uint32_t>(j - i);
      i = j;
    }
  };

  std::vector<IndexKey> pairs;
  std::vector<UnaryEntry> s_unary, p_unary, o_unary;

  fill_sort(Perm::kSpo);
  spo_.Build(keys);
  pass(&s_unary, nullptr);  // count + distinct p per s

  fill_sort(Perm::kPso);
  pso_.Build(keys);
  pass(&p_unary, &pairs);  // count + distinct s per p
  ps_counts_.Build(pairs);

  fill_sort(Perm::kPos);
  pos_.Build(keys);
  std::vector<UnaryEntry> pos_unary;
  pass(&pos_unary, &pairs);  // distinct o per p
  po_counts_.Build(pairs);
  PARQO_CHECK(pos_unary.size() == p_unary.size());
  for (std::size_t i = 0; i < p_unary.size(); ++i) {
    p_unary[i].distinct_b = pos_unary[i].distinct_a;
  }
  // (p, o) pairs re-keyed by o give distinct p per o — but the o table
  // does not exist yet; keep the pair list and fill after the OSP pass.
  std::vector<IndexKey> po_pairs = std::move(pairs);
  pairs.clear();

  fill_sort(Perm::kOsp);
  osp_.Build(keys);
  pass(&o_unary, &pairs);  // count + distinct s per o
  os_counts_.Build(pairs);
  fill_distinct_b(pairs, s_unary);     // (o,s) -> (s,o): distinct o per s
  fill_distinct_b(po_pairs, o_unary);  // (p,o) -> (o,p): distinct p per o

  s_stats_.Build(s_unary);
  p_stats_.Build(p_unary);
  o_stats_.Build(o_unary);
}

void DatasetIndex::UnaryTable::Build(std::span<const UnaryEntry> sorted) {
  n_ = sorted.size();
  data_.clear();
  dir_.clear();
  dir_.reserve((n_ + kBlockEntries - 1) / kBlockEntries);
  for (std::size_t begin = 0; begin < n_; begin += kBlockEntries) {
    const std::size_t end = std::min(n_, begin + kBlockEntries);
    dir_.push_back(
        {sorted[begin].key, static_cast<std::uint32_t>(data_.size())});
    TermId prev = sorted[begin].key;
    for (std::size_t i = begin; i < end; ++i) {
      const UnaryEntry& e = sorted[i];
      VarbyteEncode(i == begin ? e.key : e.key - prev, data_);
      VarbyteEncode(e.count, data_);
      VarbyteEncode(e.distinct_a, data_);
      VarbyteEncode(e.distinct_b, data_);
      prev = e.key;
    }
  }
}

DatasetIndex::UnaryStats DatasetIndex::UnaryTable::Find(TermId key) const {
  auto it = std::upper_bound(
      dir_.begin(), dir_.end(), key,
      [](TermId k, const BlockRef& b) { return k < b.first; });
  if (it == dir_.begin()) return {};
  const std::size_t block = static_cast<std::size_t>(it - dir_.begin()) - 1;
  const std::size_t begin = block * kBlockEntries;
  const std::size_t end = std::min(n_, begin + kBlockEntries);
  const std::uint8_t* p = data_.data() + dir_[block].offset;
  TermId k = 0;
  for (std::size_t i = begin; i < end; ++i) {
    k += VarbyteDecode32(p);
    const std::uint64_t count = VarbyteDecode(p);
    const std::uint64_t da = VarbyteDecode(p);
    const std::uint64_t db = VarbyteDecode(p);
    if (k == key) return {count, da, db};
    if (k > key) break;
  }
  return {};
}

DatasetIndex::RangeChoice DatasetIndex::ChooseRange(TermId s, TermId p,
                                                    TermId o) {
  const bool bs = s != kInvalidTermId;
  const bool bp = p != kInvalidTermId;
  const bool bo = o != kInvalidTermId;
  RangeChoice rc;
  if (bp && bs) {
    rc.perm = Perm::kPso;
    rc.lo = {p, s, bo ? o : 0};
    rc.hi = {p, s, bo ? o : kMaxTermId};
  } else if (bp && bo) {
    rc.perm = Perm::kPos;
    rc.lo = {p, o, 0};
    rc.hi = {p, o, kMaxTermId};
  } else if (bp) {
    rc.perm = Perm::kPso;
    rc.lo = {p, 0, 0};
    rc.hi = {p, kMaxTermId, kMaxTermId};
  } else if (bs && bo) {
    rc.perm = Perm::kOsp;
    rc.lo = {o, s, 0};
    rc.hi = {o, s, kMaxTermId};
  } else if (bs) {
    rc.perm = Perm::kSpo;
    rc.lo = {s, 0, 0};
    rc.hi = {s, kMaxTermId, kMaxTermId};
  } else if (bo) {
    rc.perm = Perm::kOsp;
    rc.lo = {o, 0, 0};
    rc.hi = {o, kMaxTermId, kMaxTermId};
  } else {
    rc.perm = Perm::kSpo;
    rc.lo = {0, 0, 0};
    rc.hi = {kMaxTermId, kMaxTermId, kMaxTermId};
  }
  return rc;
}

std::uint64_t DatasetIndex::CountPattern(TermId s, TermId p,
                                         TermId o) const {
  const bool bs = s != kInvalidTermId;
  const bool bp = p != kInvalidTermId;
  const bool bo = o != kInvalidTermId;
  if (bp && bs && bo) {
    CompressedKeyIndex::Scratch scratch;
    return pso_.CountRange({p, s, o}, {p, s, o}, scratch);
  }
  if (bp && bs) return PairCount(ps_counts_, p, s);
  if (bp && bo) return PairCount(po_counts_, p, o);
  if (bs && bo) return PairCount(os_counts_, o, s);
  if (bp) return StatsForP(p).count;
  if (bs) return StatsForS(s).count;
  if (bo) return StatsForO(o).count;
  return n_;
}

std::uint64_t DatasetIndex::PairCount(const CompressedKeyIndex& pairs,
                                      TermId a, TermId b) {
  CompressedKeyIndex::Scratch scratch;
  std::uint64_t out = 0;
  pairs.ScanRange({a, b, 0}, {a, b, kMaxTermId}, scratch,
                  [&](std::span<const IndexKey> run) { out = run[0].k3; });
  return out;
}

std::size_t DatasetIndex::ByteSize() const {
  return spo_.ByteSize() + pso_.ByteSize() + pos_.ByteSize() +
         osp_.ByteSize() + ps_counts_.ByteSize() + po_counts_.ByteSize() +
         os_counts_.ByteSize() + s_stats_.ByteSize() +
         p_stats_.ByteSize() + o_stats_.ByteSize();
}

}  // namespace parqo
