#include "storage/compressed_index.h"

namespace parqo {

void CompressedKeyIndex::Build(std::span<const IndexKey> sorted) {
  PARQO_DCHECK(std::is_sorted(sorted.begin(), sorted.end()));
  n_ = sorted.size();
  data_.clear();
  pages_.clear();
  pages_.reserve((n_ + kLeafEntries - 1) / kLeafEntries);

  for (std::size_t begin = 0; begin < n_; begin += kLeafEntries) {
    const std::size_t end = std::min(n_, begin + kLeafEntries);
    PageRef ref;
    ref.first = sorted[begin];
    ref.offset = static_cast<std::uint32_t>(data_.size());
    ref.count = static_cast<std::uint32_t>(end - begin);
    pages_.push_back(ref);

    IndexKey prev = sorted[begin];
    VarbyteEncode(prev.k1, data_);
    VarbyteEncode(prev.k2, data_);
    VarbyteEncode(prev.k3, data_);
    for (std::size_t i = begin + 1; i < end; ++i) {
      const IndexKey& k = sorted[i];
      if (k.k1 != prev.k1) {
        VarbyteEncode((static_cast<std::uint64_t>(k.k1 - prev.k1) << 2) | 2,
                      data_);
        VarbyteEncode(k.k2, data_);
        VarbyteEncode(k.k3, data_);
      } else if (k.k2 != prev.k2) {
        VarbyteEncode((static_cast<std::uint64_t>(k.k2 - prev.k2) << 2) | 1,
                      data_);
        VarbyteEncode(k.k3, data_);
      } else {
        VarbyteEncode(static_cast<std::uint64_t>(k.k3 - prev.k3) << 2,
                      data_);
      }
      prev = k;
    }
  }
}

std::pair<std::size_t, std::size_t> CompressedKeyIndex::PageSpan(
    const IndexKey& lo, const IndexKey& hi) const {
  if (n_ == 0 || hi < lo) return {0, 0};
  // First candidate: one page before the first page whose first key is
  // >= lo. Entries >= lo can sit at the tail of the last page whose first
  // key is < lo, but no earlier (a page's tail is bounded by the next
  // page's first key); pages whose first key equals lo may ALL hold
  // matches when duplicate keys span pages, so none of them may be
  // skipped.
  auto it = std::lower_bound(
      pages_.begin(), pages_.end(), lo,
      [](const PageRef& p, const IndexKey& k) { return p.first < k; });
  std::size_t first =
      it == pages_.begin()
          ? 0
          : static_cast<std::size_t>(it - pages_.begin()) - 1;
  // End: the first page whose first key is > hi.
  auto end_it = std::upper_bound(
      pages_.begin() + static_cast<std::ptrdiff_t>(first), pages_.end(), hi,
      [](const IndexKey& k, const PageRef& p) { return k < p.first; });
  return {first, static_cast<std::size_t>(end_it - pages_.begin())};
}

std::uint64_t CompressedKeyIndex::CountRange(const IndexKey& lo,
                                             const IndexKey& hi,
                                             Scratch& scratch) const {
  auto [first, end] = PageSpan(lo, hi);
  std::uint64_t total = 0;
  for (std::size_t page = first; page < end; ++page) {
    const PageRef& ref = pages_[page];
    // A page is fully inside the range when its own first key is >= lo
    // and the NEXT page's first key is <= hi: the page's last key is
    // bounded by the next anchor, so no decode is needed.
    if (ref.first >= lo && page + 1 < pages_.size() &&
        pages_[page + 1].first <= hi) {
      total += ref.count;
      continue;
    }
    ScanPage(page, lo, hi, scratch,
             [&](std::span<const IndexKey> run) { total += run.size(); });
  }
  return total;
}

void CompressedKeyIndex::DecodePage(std::size_t page,
                                    Scratch& scratch) const {
  const PageRef& ref = pages_[page];
  scratch.keys.clear();
  scratch.keys.reserve(ref.count);
  const std::uint8_t* p = data_.data() + ref.offset;
  IndexKey k;
  k.k1 = VarbyteDecode32(p);
  k.k2 = VarbyteDecode32(p);
  k.k3 = VarbyteDecode32(p);
  scratch.keys.push_back(k);
  for (std::uint32_t i = 1; i < ref.count; ++i) {
    const std::uint64_t tagged = VarbyteDecode(p);
    const std::uint32_t gap = static_cast<std::uint32_t>(tagged >> 2);
    switch (tagged & 3) {
      case 2:
        k.k1 += gap;
        k.k2 = VarbyteDecode32(p);
        k.k3 = VarbyteDecode32(p);
        break;
      case 1:
        k.k2 += gap;
        k.k3 = VarbyteDecode32(p);
        break;
      default:
        k.k3 += gap;
        break;
    }
    scratch.keys.push_back(k);
  }
}

}  // namespace parqo
