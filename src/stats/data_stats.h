// Exact statistics computed from a loaded dataset: |tp| is the number of
// matching triples and B(tp, v) the number of distinct bindings of v among
// them. The paper's prototype gets these from RDF-3X's statistics; this
// reproduction answers them from the graph's aggregated permutation
// indexes (storage/dataset_index.h) in O(log n) per pattern — no scans —
// falling back to a brute-force pass only for repeated-variable patterns
// the aggregates cannot express. The values are identical to an exact
// scan either way.
//
// DataStatsOptions::pairwise_joins additionally measures the EXACT join
// cardinality |tp_i JOIN tp_j| of every pattern pair sharing a variable
// (hash-join over index range scans, smaller side builds). The estimator
// uses these to replace Eq. 11's independence assumption with measured
// pairwise selectivities; without them it reproduces the baseline
// estimate bit-for-bit.

#ifndef PARQO_STATS_DATA_STATS_H_
#define PARQO_STATS_DATA_STATS_H_

#include <cstddef>

#include "query/join_graph.h"
#include "rdf/graph.h"
#include "stats/statistics.h"

namespace parqo {

struct DataStatsOptions {
  /// Also fill QueryStatistics::JoinCardinality for every pattern pair
  /// sharing at least one variable (repeated-variable patterns excluded).
  bool pairwise_joins = false;
  /// Skip a pair when its SMALLER side matches more rows than this (the
  /// build table would not stay cheap); the estimator falls back to
  /// Eq. 11 for skipped pairs.
  std::size_t pairwise_cap = 4u << 20;
};

/// Computes |tp| and B(tp, v) for all patterns of `jg` against `graph`.
/// Patterns with no matches get cardinality 1 (the estimator's floor).
QueryStatistics ComputeStatisticsFromGraph(const JoinGraph& jg,
                                           const RdfGraph& graph);

/// As above, plus the optional pairwise join cardinalities.
QueryStatistics ComputeStatisticsFromGraph(const JoinGraph& jg,
                                           const RdfGraph& graph,
                                           const DataStatsOptions& opts);

}  // namespace parqo

#endif  // PARQO_STATS_DATA_STATS_H_
