// Exact statistics computed from a loaded dataset: |tp| is the number of
// matching triples and B(tp, v) the number of distinct bindings of v among
// them. The paper's prototype gets these from RDF-3X's statistics; at our
// scale an exact scan is affordable and removes one source of noise when
// comparing optimizers.

#ifndef PARQO_STATS_DATA_STATS_H_
#define PARQO_STATS_DATA_STATS_H_

#include "query/join_graph.h"
#include "rdf/graph.h"
#include "stats/statistics.h"

namespace parqo {

/// Computes |tp| and B(tp, v) for all patterns of `jg` against `graph`.
/// Patterns with no matches get cardinality 1 (the estimator's floor).
QueryStatistics ComputeStatisticsFromGraph(const JoinGraph& jg,
                                           const RdfGraph& graph);

}  // namespace parqo

#endif  // PARQO_STATS_DATA_STATS_H_
