#include "stats/data_stats.h"

#include <unordered_set>

namespace parqo {
namespace {

// Resolves a constant pattern term against the dictionary;
// kInvalidTermId means "cannot match anything".
TermId ResolveConst(const PatternTerm& t, const Dictionary& dict) {
  return dict.Lookup(t.term);
}

}  // namespace

QueryStatistics ComputeStatisticsFromGraph(const JoinGraph& jg,
                                           const RdfGraph& graph) {
  QueryStatistics stats(jg);
  const Dictionary& dict = graph.dict();

  for (int tp = 0; tp < jg.num_tps(); ++tp) {
    const TriplePattern& pat = jg.pattern(tp);
    TermId cs = pat.s.IsVar() ? kInvalidTermId : ResolveConst(pat.s, dict);
    TermId cp = pat.p.IsVar() ? kInvalidTermId : ResolveConst(pat.p, dict);
    TermId co = pat.o.IsVar() ? kInvalidTermId : ResolveConst(pat.o, dict);
    bool unmatchable = (!pat.s.IsVar() && cs == kInvalidTermId) ||
                       (!pat.p.IsVar() && cp == kInvalidTermId) ||
                       (!pat.o.IsVar() && co == kInvalidTermId);

    std::size_t count = 0;
    // One distinct-value set per variable of the pattern.
    std::vector<std::unordered_set<TermId>> distinct(jg.VarsOf(tp).size());

    if (!unmatchable) {
      for (const Triple& t : graph.triples()) {
        if (!pat.s.IsVar() && t.s != cs) continue;
        if (!pat.p.IsVar() && t.p != cp) continue;
        if (!pat.o.IsVar() && t.o != co) continue;
        // Repeated-variable patterns (?x p ?x) require equal bindings.
        bool ok = true;
        if (pat.s.IsVar() && pat.o.IsVar() && pat.s.var == pat.o.var &&
            t.s != t.o) {
          ok = false;
        }
        if (pat.s.IsVar() && pat.p.IsVar() && pat.s.var == pat.p.var &&
            t.s != t.p) {
          ok = false;
        }
        if (pat.p.IsVar() && pat.o.IsVar() && pat.p.var == pat.o.var &&
            t.p != t.o) {
          ok = false;
        }
        if (!ok) continue;
        ++count;
        const std::vector<VarId>& vars = jg.VarsOf(tp);
        for (std::size_t i = 0; i < vars.size(); ++i) {
          const std::string& name = jg.var_name(vars[i]);
          if (pat.s.IsVar() && pat.s.var == name) distinct[i].insert(t.s);
          if (pat.p.IsVar() && pat.p.var == name) distinct[i].insert(t.p);
          if (pat.o.IsVar() && pat.o.var == name) distinct[i].insert(t.o);
        }
      }
    }

    double card = count == 0 ? 1.0 : static_cast<double>(count);
    stats.SetCardinality(tp, card);
    const std::vector<VarId>& vars = jg.VarsOf(tp);
    for (std::size_t i = 0; i < vars.size(); ++i) {
      double b = distinct[i].empty() ? 1.0
                                     : static_cast<double>(distinct[i].size());
      stats.SetBindings(tp, vars[i], b);
    }
  }
  return stats;
}

}  // namespace parqo
