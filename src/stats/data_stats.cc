#include "stats/data_stats.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/dataset_index.h"

namespace parqo {
namespace {

// Resolves a constant pattern term against the dictionary;
// kInvalidTermId means "cannot match anything".
TermId ResolveConst(const PatternTerm& t, const Dictionary& dict) {
  return dict.Lookup(t.term);
}

// One pattern's constants and shape, resolved once and shared between the
// per-pattern aggregates and the pairwise join measurement.
struct ResolvedStats {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;
  bool unmatchable = false;
  bool repeated = false;    // a variable occurs in 2+ positions
  std::uint64_t count = 0;  // exact |tp|; 0 when unmatchable
};

ResolvedStats ResolvePattern(const TriplePattern& pat,
                             const Dictionary& dict) {
  ResolvedStats r;
  if (!pat.s.IsVar()) {
    r.s = ResolveConst(pat.s, dict);
    if (r.s == kInvalidTermId) r.unmatchable = true;
  }
  if (!pat.p.IsVar()) {
    r.p = ResolveConst(pat.p, dict);
    if (r.p == kInvalidTermId) r.unmatchable = true;
  }
  if (!pat.o.IsVar()) {
    r.o = ResolveConst(pat.o, dict);
    if (r.o == kInvalidTermId) r.unmatchable = true;
  }
  r.repeated =
      (pat.s.IsVar() && pat.o.IsVar() && pat.s.var == pat.o.var) ||
      (pat.s.IsVar() && pat.p.IsVar() && pat.s.var == pat.p.var) ||
      (pat.p.IsVar() && pat.o.IsVar() && pat.p.var == pat.o.var);
  return r;
}

// Brute-force scan for repeated-variable patterns (?x p ?x): the
// aggregated indexes cannot express the equality constraint, and such
// patterns are rare enough that one pass is fine.
std::uint64_t BruteForcePattern(const JoinGraph& jg, const RdfGraph& graph,
                                int tp, const TriplePattern& pat,
                                const ResolvedStats& r,
                                QueryStatistics& stats) {
  std::size_t count = 0;
  const std::vector<VarId>& vars = jg.VarsOf(tp);
  std::vector<std::unordered_set<TermId>> distinct(vars.size());

  if (!r.unmatchable) {
    for (const Triple& t : graph.triples()) {
      if (!pat.s.IsVar() && t.s != r.s) continue;
      if (!pat.p.IsVar() && t.p != r.p) continue;
      if (!pat.o.IsVar() && t.o != r.o) continue;
      if (pat.s.IsVar() && pat.o.IsVar() && pat.s.var == pat.o.var &&
          t.s != t.o) {
        continue;
      }
      if (pat.s.IsVar() && pat.p.IsVar() && pat.s.var == pat.p.var &&
          t.s != t.p) {
        continue;
      }
      if (pat.p.IsVar() && pat.o.IsVar() && pat.p.var == pat.o.var &&
          t.p != t.o) {
        continue;
      }
      ++count;
      for (std::size_t i = 0; i < vars.size(); ++i) {
        const std::string& name = jg.var_name(vars[i]);
        if (pat.s.IsVar() && pat.s.var == name) distinct[i].insert(t.s);
        if (pat.p.IsVar() && pat.p.var == name) distinct[i].insert(t.p);
        if (pat.o.IsVar() && pat.o.var == name) distinct[i].insert(t.o);
      }
    }
  }

  stats.SetCardinality(tp, count == 0 ? 1.0 : static_cast<double>(count));
  for (std::size_t i = 0; i < vars.size(); ++i) {
    double b = distinct[i].empty() ? 1.0
                                   : static_cast<double>(distinct[i].size());
    stats.SetBindings(tp, vars[i], b);
  }
  return count;
}

TermId FieldOf(const Triple& t, int field) {
  return field == 0 ? t.s : field == 1 ? t.p : t.o;
}

// Packs the (at most two) shared-variable bindings of a triple into one
// 64-bit key. Both sides of a pair use the same shared-variable order, so
// packed keys compare exactly.
std::uint64_t PackKey(const std::vector<int>& fields, const Triple& t) {
  std::uint64_t k = FieldOf(t, fields[0]);
  if (fields.size() == 2) k = (k << 32) | FieldOf(t, fields[1]);
  return k;
}

// Exact |tp_i JOIN tp_j| on the shared variables: hash-count the smaller
// side's shared-variable bindings from an index range scan, then stream
// the larger side and sum the matches. fields_* give each side's triple
// position (0=s, 1=p, 2=o) per shared variable, in a common order.
std::uint64_t ExactPairJoin(const DatasetIndex& index,
                            const ResolvedStats& ri,
                            const std::vector<int>& fields_i,
                            const ResolvedStats& rj,
                            const std::vector<int>& fields_j) {
  const bool build_i = ri.count <= rj.count;
  const ResolvedStats& rb = build_i ? ri : rj;
  const ResolvedStats& rp = build_i ? rj : ri;
  const std::vector<int>& fb = build_i ? fields_i : fields_j;
  const std::vector<int>& fp = build_i ? fields_j : fields_i;

  CompressedKeyIndex::Scratch scratch;
  std::uint64_t total = 0;
  if (fb.size() <= 2) {
    std::unordered_map<std::uint64_t, std::uint64_t> counts;
    counts.reserve(static_cast<std::size_t>(rb.count));
    index.ForEachMatch(rb.s, rb.p, rb.o, scratch,
                       [&](const Triple& t) { ++counts[PackKey(fb, t)]; });
    index.ForEachMatch(rp.s, rp.p, rp.o, scratch, [&](const Triple& t) {
      auto it = counts.find(PackKey(fp, t));
      if (it != counts.end()) total += it->second;
    });
  } else {
    // Three shared variables (both patterns all-variable): too wide for a
    // packed key, rare enough for an ordered map.
    auto key3 = [](const std::vector<int>& fields, const Triple& t) {
      return std::array<TermId, 3>{FieldOf(t, fields[0]),
                                   FieldOf(t, fields[1]),
                                   FieldOf(t, fields[2])};
    };
    std::map<std::array<TermId, 3>, std::uint64_t> counts;
    index.ForEachMatch(rb.s, rb.p, rb.o, scratch,
                       [&](const Triple& t) { ++counts[key3(fb, t)]; });
    index.ForEachMatch(rp.s, rp.p, rp.o, scratch, [&](const Triple& t) {
      auto it = counts.find(key3(fp, t));
      if (it != counts.end()) total += it->second;
    });
  }
  return total;
}

void ComputePairwiseJoins(const JoinGraph& jg, const DatasetIndex& index,
                          const std::vector<ResolvedStats>& resolved,
                          const DataStatsOptions& opts,
                          QueryStatistics& stats) {
  for (int i = 0; i < jg.num_tps(); ++i) {
    for (int j = i + 1; j < jg.num_tps(); ++j) {
      const ResolvedStats& ri = resolved[i];
      const ResolvedStats& rj = resolved[j];
      // Repeated-variable patterns are left unknown (estimator falls
      // back); unmatchable sides make the join exactly empty.
      if (ri.repeated || rj.repeated) continue;
      std::vector<VarId> shared;
      const std::vector<VarId>& vars_j = jg.VarsOf(j);
      for (VarId v : jg.VarsOf(i)) {
        if (std::find(vars_j.begin(), vars_j.end(), v) != vars_j.end()) {
          shared.push_back(v);
        }
      }
      if (shared.empty()) continue;
      if (ri.unmatchable || rj.unmatchable) {
        stats.SetJoinCardinality(i, j, 0.0);
        continue;
      }
      if (std::min(ri.count, rj.count) > opts.pairwise_cap) continue;

      auto fields_of = [&](int tp) {
        const TriplePattern& pat = jg.pattern(tp);
        std::vector<int> fields;
        for (VarId v : shared) {
          const std::string& name = jg.var_name(v);
          if (pat.s.IsVar() && pat.s.var == name) {
            fields.push_back(0);
          } else if (pat.p.IsVar() && pat.p.var == name) {
            fields.push_back(1);
          } else {
            fields.push_back(2);
          }
        }
        return fields;
      };
      stats.SetJoinCardinality(
          i, j,
          static_cast<double>(
              ExactPairJoin(index, ri, fields_of(i), rj, fields_of(j))));
    }
  }
}

}  // namespace

QueryStatistics ComputeStatisticsFromGraph(const JoinGraph& jg,
                                           const RdfGraph& graph,
                                           const DataStatsOptions& opts) {
  QueryStatistics stats(jg);
  const Dictionary& dict = graph.dict();
  const DatasetIndex& index = graph.Index();
  std::vector<ResolvedStats> resolved(jg.num_tps());

  for (int tp = 0; tp < jg.num_tps(); ++tp) {
    const TriplePattern& pat = jg.pattern(tp);
    ResolvedStats& r = resolved[tp];
    r = ResolvePattern(pat, dict);
    if (r.repeated) {
      r.count = BruteForcePattern(jg, graph, tp, pat, r, stats);
      continue;
    }

    // Aggregated-index path: exact |tp| and per-position distinct counts
    // without touching any leaves. Values are identical to the brute
    // scan this replaced — graph triples are deduplicated, so with two
    // positions pinned the free position's bindings are pairwise
    // distinct (distinct == count).
    std::uint64_t dpos[3] = {0, 0, 0};
    if (!r.unmatchable) {
      r.count = index.CountPattern(r.s, r.p, r.o);
      const bool vs = pat.s.IsVar();
      const bool vp = pat.p.IsVar();
      const bool vo = pat.o.IsVar();
      const int nvars = static_cast<int>(vs) + vp + vo;
      if (nvars == 3) {
        dpos[0] = index.distinct_s();
        dpos[1] = index.distinct_p();
        dpos[2] = index.distinct_o();
      } else if (nvars == 2) {
        if (!vs) {
          DatasetIndex::UnaryStats u = index.StatsForS(r.s);
          dpos[1] = u.distinct_a;
          dpos[2] = u.distinct_b;
        } else if (!vp) {
          DatasetIndex::UnaryStats u = index.StatsForP(r.p);
          dpos[0] = u.distinct_a;
          dpos[2] = u.distinct_b;
        } else {
          DatasetIndex::UnaryStats u = index.StatsForO(r.o);
          dpos[0] = u.distinct_a;
          dpos[1] = u.distinct_b;
        }
      } else if (nvars == 1) {
        dpos[vs ? 0 : vp ? 1 : 2] = r.count;
      }
    }

    stats.SetCardinality(
        tp, r.count == 0 ? 1.0 : static_cast<double>(r.count));
    for (VarId v : jg.VarsOf(tp)) {
      const std::string& name = jg.var_name(v);
      std::uint64_t d = 0;
      if (pat.s.IsVar() && pat.s.var == name) {
        d = dpos[0];
      } else if (pat.p.IsVar() && pat.p.var == name) {
        d = dpos[1];
      } else if (pat.o.IsVar() && pat.o.var == name) {
        d = dpos[2];
      }
      stats.SetBindings(tp, v, d == 0 ? 1.0 : static_cast<double>(d));
    }
  }

  if (opts.pairwise_joins) {
    ComputePairwiseJoins(jg, index, resolved, opts, stats);
  }
  return stats;
}

QueryStatistics ComputeStatisticsFromGraph(const JoinGraph& jg,
                                           const RdfGraph& graph) {
  return ComputeStatisticsFromGraph(jg, graph, DataStatsOptions{});
}

}  // namespace parqo
