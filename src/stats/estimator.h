// Cardinality estimation for subqueries, following Appendix B:
//
//   |tp1 JOIN tp2| = |tp1|*|tp2| / prod_{v shared} max(B(tp1,v), B(tp2,v))
//
// extended to n patterns by folding in a canonical order (Eq. 11). Folding
// in ascending triple-pattern index makes the estimate a pure function of
// the subquery bitset, so every optimizer sees identical statistics and
// memoized plans can be compared across algorithms.
//
// The memo is striped over mutex-guarded shards so concurrent enumeration
// workers (see td_cmd_core.h) share one estimator. Each shard pairs a flat
// open-addressed index (FlatTpSetMap, bitset keys probed inline — no
// per-node allocation, no pointer chase) with a deque that owns the
// derived entries: deque growth never moves existing elements, so a
// pointer obtained under the shard lock stays valid after it is released.
// Racing derivations of the same subquery compute identical values (the
// derivation is a pure function of the bitset) and the first insert wins.

#ifndef PARQO_STATS_ESTIMATOR_H_
#define PARQO_STATS_ESTIMATOR_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/flat_map.h"
#include "common/thread_annotations.h"

#include "common/tp_set.h"
#include "query/join_graph.h"
#include "stats/statistics.h"

namespace parqo {

class CardinalityEstimator {
 public:
  CardinalityEstimator(const JoinGraph& jg, QueryStatistics stats);

  CardinalityEstimator(const CardinalityEstimator&) = delete;
  CardinalityEstimator& operator=(const CardinalityEstimator&) = delete;

  /// Estimated cardinality of the join of the subquery's patterns.
  /// Memoized and safe to call concurrently; `sq` must be non-empty.
  double Cardinality(TpSet sq) const;

  /// Estimated distinct bindings of variable v in the subquery's result.
  double Bindings(TpSet sq, VarId v) const;

  const QueryStatistics& statistics() const { return stats_; }
  const JoinGraph& join_graph() const { return *jg_; }

  /// Memo hit/miss counts across all Cardinality()/Bindings() calls.
  /// Only collected while MetricsEnabled() (zero otherwise), so the hot
  /// lookup stays a single branch in the default configuration.
  std::uint64_t memo_hits() const {
    return memo_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t memo_misses() const {
    return memo_misses_.load(std::memory_order_relaxed);
  }

 private:
  struct Derived {
    double cardinality = 1.0;
    std::vector<double> bindings;  // per VarId; 0 when var absent
  };

  static constexpr std::size_t kShards = 16;  // power of two

  struct Shard {
    /// Never held across the Derive recursion (which re-enters other
    /// shards at the same rank): lookups and inserts lock, the
    /// derivation itself runs unlocked.
    Mutex mu{LockRank::kEstimatorShard};
    FlatTpSetMap<const Derived*> map PARQO_GUARDED_BY(mu);
    // Element addresses are stable (deque growth never moves entries), so
    // a pointer published through `map` outlives the lock that minted it.
    std::deque<Derived> storage PARQO_GUARDED_BY(mu);
  };

  const Derived& Derive(TpSet sq) const;

  const JoinGraph* jg_;
  QueryStatistics stats_;
  mutable std::array<Shard, kShards> shards_;
  mutable std::atomic<std::uint64_t> memo_hits_{0};
  mutable std::atomic<std::uint64_t> memo_misses_{0};
};

}  // namespace parqo

#endif  // PARQO_STATS_ESTIMATOR_H_
