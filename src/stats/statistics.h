// Per-triple-pattern statistics: the cardinality |tp| of each pattern's
// bindings and the number of distinct bindings B(tp, v) of each variable
// (Appendix B of the paper). These are the inputs to the cardinality
// estimator; they come either from data (exact counts over the store) or
// from the synthetic workload generators (random in [1, 1000], Section V-A).

#ifndef PARQO_STATS_STATISTICS_H_
#define PARQO_STATS_STATISTICS_H_

#include <vector>

#include "query/join_graph.h"

namespace parqo {

class QueryStatistics {
 public:
  /// Initializes all cardinalities to 1.
  explicit QueryStatistics(const JoinGraph& jg)
      : num_tps_(jg.num_tps()),
        num_vars_(jg.num_vars()),
        cardinality_(jg.num_tps(), 1.0),
        bindings_(static_cast<std::size_t>(jg.num_tps()) * jg.num_vars(),
                  1.0) {}

  void SetCardinality(int tp, double card) { cardinality_[tp] = card; }
  double Cardinality(int tp) const { return cardinality_[tp]; }

  /// B(tp, v): distinct bindings of variable v in tp's matches. Must not
  /// exceed |tp|; setters clamp to [1, |tp|] to keep Eq. 10 well-formed.
  void SetBindings(int tp, VarId v, double b) {
    double card = cardinality_[tp];
    if (b < 1) b = 1;
    if (b > card && card >= 1) b = card;
    bindings_[Index(tp, v)] = b;
  }
  double Bindings(int tp, VarId v) const { return bindings_[Index(tp, v)]; }

  /// Exact pairwise join cardinality |tp_a JOIN tp_b| over the patterns'
  /// shared variables, or -1 when unknown. Optional refinement beyond the
  /// paper's per-pattern statistics: only data-backed statistics built
  /// with DataStatsOptions::pairwise_joins fill these (from the
  /// aggregated indexes), and the estimator falls back to the Eq. 10/11
  /// independence fold whenever a needed pair is missing. Symmetric;
  /// lazily allocated so synthetic-stats workloads pay nothing.
  void SetJoinCardinality(int a, int b, double card) {
    if (pair_card_.empty()) {
      pair_card_.assign(static_cast<std::size_t>(num_tps_) * num_tps_,
                        -1.0);
    }
    pair_card_[PairIndex(a, b)] = card;
    pair_card_[PairIndex(b, a)] = card;
  }
  double JoinCardinality(int a, int b) const {
    return pair_card_.empty() ? -1.0 : pair_card_[PairIndex(a, b)];
  }
  /// True when any pairwise join cardinality has been set.
  bool has_pairwise() const { return !pair_card_.empty(); }

 private:
  std::size_t Index(int tp, VarId v) const {
    return static_cast<std::size_t>(tp) * num_vars_ + v;
  }
  std::size_t PairIndex(int a, int b) const {
    return static_cast<std::size_t>(a) * num_tps_ + b;
  }

  int num_tps_;
  int num_vars_;
  std::vector<double> cardinality_;
  std::vector<double> bindings_;   // row-major [tp][var]
  std::vector<double> pair_card_;  // row-major [tp][tp]; empty = none set
};

}  // namespace parqo

#endif  // PARQO_STATS_STATISTICS_H_
