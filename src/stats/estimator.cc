#include "stats/estimator.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"
#include "common/status.h"

namespace parqo {

CardinalityEstimator::CardinalityEstimator(const JoinGraph& jg,
                                           QueryStatistics stats)
    : jg_(&jg), stats_(std::move(stats)) {}

const CardinalityEstimator::Derived& CardinalityEstimator::Derive(
    TpSet sq) const {
  PARQO_CHECK(!sq.Empty());
  Shard& shard = shards_[TpSetHash{}(sq) & (kShards - 1)];
  {
    MutexLock lock(shard.mu);
    if (const Derived* const* hit = shard.map.Find(sq)) {
      if (MetricsEnabled()) {
        memo_hits_.fetch_add(1, std::memory_order_relaxed);
      }
      return **hit;
    }
  }
  if (MetricsEnabled()) {
    memo_misses_.fetch_add(1, std::memory_order_relaxed);
  }

  // Derive outside the lock — the recursion below re-enters this shard
  // table for prefixes of sq.
  Derived d;
  d.bindings.assign(jg_->num_vars(), 0.0);

  if (sq.Count() == 1) {
    int tp = sq.First();
    d.cardinality = stats_.Cardinality(tp);
    for (VarId v : jg_->VarsOf(tp)) {
      d.bindings[v] = std::min(stats_.Bindings(tp, v), d.cardinality);
    }
  } else {
    // Eq. 11: fold the highest-index pattern into the rest. The recursion
    // bottoms out at singletons and every prefix is memoized, so deriving
    // all subqueries of a query costs O(#subqueries * #vars).
    TpSet rest = sq;
    // Remove the highest-index pattern: iterate to find it.
    int last = -1;
    for (int tp : sq) last = tp;
    rest.Remove(last);
    const Derived& lhs = Derive(rest);

    double tp_card = stats_.Cardinality(last);
    double denom = 1.0;
    d.bindings = lhs.bindings;
    const std::vector<VarId>& last_vars = jg_->VarsOf(last);
    for (VarId v : last_vars) {
      double b_tp = std::min(stats_.Bindings(last, v), tp_card);
      if (lhs.bindings[v] > 0) {
        denom *= std::max(lhs.bindings[v], b_tp);  // shared variable
        d.bindings[v] = std::min(lhs.bindings[v], b_tp);
      } else {
        d.bindings[v] = b_tp;
      }
    }

    // Exact-pairwise refinement: a two-pattern subquery IS a measured
    // pair — when the statistics carry |tp_j JOIN tp_last|, that value is
    // the true cardinality, not an estimate, so use it directly. Larger
    // subqueries keep the Eq. 11 fold but now recurse into exact
    // two-pattern seeds. Deliberately NO multi-pattern selectivity
    // product: the predicates linking a pattern to the rest of a star or
    // cycle are strongly correlated, and treating measured pairwise
    // selectivities as independent drives estimates to the floor, orders
    // of magnitude under the truth. Without pairwise statistics the
    // baseline fold is reproduced bit-for-bit.
    const double pair_exact =
        stats_.has_pairwise() && rest.Count() == 1
            ? stats_.JoinCardinality(rest.First(), last)
            : -1.0;
    d.cardinality = pair_exact >= 0
                        ? pair_exact
                        : lhs.cardinality * tp_card / denom;
    if (d.cardinality < 1.0) d.cardinality = 1.0;
    // Distinct bindings can never exceed the result cardinality.
    for (double& b : d.bindings) b = std::min(b, d.cardinality);
  }

  // A racing thread may have inserted sq meanwhile; first insert wins,
  // and both derivations are identical anyway. The deque owns the entry
  // (stable address), the flat map only indexes it.
  MutexLock lock(shard.mu);
  if (const Derived* const* hit = shard.map.Find(sq)) return **hit;
  shard.storage.push_back(std::move(d));
  const Derived* entry = &shard.storage.back();
  shard.map.EmplaceFirstWins(sq, entry);
  return *entry;
}

double CardinalityEstimator::Cardinality(TpSet sq) const {
  return Derive(sq).cardinality;
}

double CardinalityEstimator::Bindings(TpSet sq, VarId v) const {
  return Derive(sq).bindings[v];
}

}  // namespace parqo
