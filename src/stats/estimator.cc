#include "stats/estimator.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"
#include "common/status.h"

namespace parqo {

CardinalityEstimator::CardinalityEstimator(const JoinGraph& jg,
                                           QueryStatistics stats)
    : jg_(&jg), stats_(std::move(stats)) {}

const CardinalityEstimator::Derived& CardinalityEstimator::Derive(
    TpSet sq) const {
  PARQO_CHECK(!sq.Empty());
  Shard& shard = shards_[TpSetHash{}(sq) & (kShards - 1)];
  {
    MutexLock lock(shard.mu);
    if (const Derived* const* hit = shard.map.Find(sq)) {
      if (MetricsEnabled()) {
        memo_hits_.fetch_add(1, std::memory_order_relaxed);
      }
      return **hit;
    }
  }
  if (MetricsEnabled()) {
    memo_misses_.fetch_add(1, std::memory_order_relaxed);
  }

  // Derive outside the lock — the recursion below re-enters this shard
  // table for prefixes of sq.
  Derived d;
  d.bindings.assign(jg_->num_vars(), 0.0);

  if (sq.Count() == 1) {
    int tp = sq.First();
    d.cardinality = stats_.Cardinality(tp);
    for (VarId v : jg_->VarsOf(tp)) {
      d.bindings[v] = std::min(stats_.Bindings(tp, v), d.cardinality);
    }
  } else {
    // Eq. 11: fold the highest-index pattern into the rest. The recursion
    // bottoms out at singletons and every prefix is memoized, so deriving
    // all subqueries of a query costs O(#subqueries * #vars).
    TpSet rest = sq;
    // Remove the highest-index pattern: iterate to find it.
    int last = -1;
    for (int tp : sq) last = tp;
    rest.Remove(last);
    const Derived& lhs = Derive(rest);

    double tp_card = stats_.Cardinality(last);
    double denom = 1.0;
    d.bindings = lhs.bindings;
    for (VarId v : jg_->VarsOf(last)) {
      double b_tp = std::min(stats_.Bindings(last, v), tp_card);
      if (lhs.bindings[v] > 0) {
        denom *= std::max(lhs.bindings[v], b_tp);  // shared variable
        d.bindings[v] = std::min(lhs.bindings[v], b_tp);
      } else {
        d.bindings[v] = b_tp;
      }
    }
    d.cardinality = lhs.cardinality * tp_card / denom;
    if (d.cardinality < 1.0) d.cardinality = 1.0;
    // Distinct bindings can never exceed the result cardinality.
    for (double& b : d.bindings) b = std::min(b, d.cardinality);
  }

  // A racing thread may have inserted sq meanwhile; first insert wins,
  // and both derivations are identical anyway. The deque owns the entry
  // (stable address), the flat map only indexes it.
  MutexLock lock(shard.mu);
  if (const Derived* const* hit = shard.map.Find(sq)) return **hit;
  shard.storage.push_back(std::move(d));
  const Derived* entry = &shard.storage.back();
  shard.map.EmplaceFirstWins(sq, entry);
  return *entry;
}

double CardinalityEstimator::Cardinality(TpSet sq) const {
  return Derive(sq).cardinality;
}

double CardinalityEstimator::Bindings(TpSet sq, VarId v) const {
  return Derive(sq).bindings[v];
}

}  // namespace parqo
