#include "query/shape.h"

#include <limits>

namespace parqo {

std::string ToString(QueryShape shape) {
  switch (shape) {
    case QueryShape::kSingle: return "single";
    case QueryShape::kStar: return "star";
    case QueryShape::kChain: return "chain";
    case QueryShape::kCycle: return "cycle";
    case QueryShape::kTree: return "tree";
    case QueryShape::kDense: return "dense";
    case QueryShape::kDisconnected: return "disconnected";
  }
  return "?";
}

int CyclomaticNumber(const JoinGraph& jg) {
  int edges = 0;
  for (VarId v : jg.join_vars()) edges += jg.Ntp(v).Count();
  int vt = jg.num_tps();
  int vj = jg.num_join_vars();
  int components = static_cast<int>(jg.Components(jg.AllTps()).size());
  // Each pattern-component contributes the same component in the bipartite
  // graph (join variables never bridge components by construction).
  return edges - vt - vj + components;
}

double TpToJoinVarRatio(const JoinGraph& jg) {
  if (jg.num_join_vars() == 0) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(jg.num_tps()) /
         static_cast<double>(jg.num_join_vars());
}

namespace {

// True if the 2-pattern query forms a directed path in G_Q: some shared
// variable is object of one pattern and subject of the other.
bool IsDirectedPathPair(const JoinGraph& jg) {
  const TriplePattern& a = jg.pattern(0);
  const TriplePattern& b = jg.pattern(1);
  auto obj_to_subj = [](const TriplePattern& x, const TriplePattern& y) {
    return x.o.IsVar() && y.s.IsVar() && x.o.var == y.s.var;
  };
  return obj_to_subj(a, b) || obj_to_subj(b, a);
}

}  // namespace

QueryShape ClassifyShape(const JoinGraph& jg) {
  const int n = jg.num_tps();
  if (n == 1) return QueryShape::kSingle;
  if (!jg.IsConnected(jg.AllTps())) return QueryShape::kDisconnected;

  if (n == 2) {
    return IsDirectedPathPair(jg) ? QueryShape::kChain : QueryShape::kStar;
  }

  // Star: a single join variable shared by every pattern. (Queries where
  // one variable covers all patterns but extra join variables exist are
  // dense/tree, handled below.)
  if (jg.num_join_vars() == 1 &&
      jg.Ntp(jg.join_vars()[0]).Count() == n) {
    return QueryShape::kStar;
  }

  int cycles = CyclomaticNumber(jg);
  bool all_var_deg2 = true;
  for (VarId v : jg.join_vars()) {
    if (jg.Ntp(v).Count() != 2) all_var_deg2 = false;
  }
  int tps_with_two_jvars = 0;
  int tps_with_one_jvar = 0;
  bool tp_jvars_ok = true;
  for (int tp = 0; tp < n; ++tp) {
    std::size_t k = jg.JoinVarsOf(tp).size();
    if (k == 2) {
      ++tps_with_two_jvars;
    } else if (k == 1) {
      ++tps_with_one_jvar;
    } else {
      tp_jvars_ok = false;
    }
  }

  if (cycles == 0) {
    if (all_var_deg2 && tp_jvars_ok && tps_with_one_jvar == 2) {
      return QueryShape::kChain;
    }
    return QueryShape::kTree;
  }
  if (cycles == 1 && all_var_deg2 && tp_jvars_ok &&
      tps_with_two_jvars == n) {
    return QueryShape::kCycle;
  }
  return QueryShape::kDense;
}

}  // namespace parqo
