#include "query/match.h"

#include <functional>
#include <unordered_map>

namespace parqo {
namespace {

struct Slot {
  bool is_const = false;
  TermId constant = kInvalidTermId;
  VarId var = kInvalidVarId;
};

struct CompiledPattern {
  Slot s, p, o;
};

}  // namespace

std::vector<BgpMatch> MatchBgp(const JoinGraph& jg, const RdfGraph& graph,
                               std::size_t limit) {
  const Dictionary& dict = graph.dict();

  std::unordered_map<TermId, std::vector<const Triple*>> by_predicate;
  for (const Triple& t : graph.triples()) by_predicate[t.p].push_back(&t);

  bool unmatchable = false;
  std::vector<CompiledPattern> pats;
  for (int i = 0; i < jg.num_tps(); ++i) {
    const TriplePattern& tp = jg.pattern(i);
    auto slot = [&](const PatternTerm& t) {
      Slot s;
      if (t.IsVar()) {
        s.var = jg.FindVar(t.var);
      } else {
        s.is_const = true;
        s.constant = dict.Lookup(t.term);
        if (s.constant == kInvalidTermId) unmatchable = true;
      }
      return s;
    };
    pats.push_back(CompiledPattern{slot(tp.s), slot(tp.p), slot(tp.o)});
  }
  std::vector<BgpMatch> results;
  if (unmatchable) return results;

  std::vector<TermId> binding(jg.num_vars(), kInvalidTermId);
  std::vector<Triple> matched(pats.size());
  std::vector<bool> done(pats.size(), false);

  auto bound = [&](const Slot& s) {
    return s.is_const ||
           (s.var != kInvalidVarId && binding[s.var] != kInvalidTermId);
  };
  auto pick = [&]() {
    int best = -1, best_score = -1;
    for (std::size_t i = 0; i < pats.size(); ++i) {
      if (done[i]) continue;
      int score = (bound(pats[i].p) ? 4 : 0) + (bound(pats[i].s) ? 2 : 0) +
                  (bound(pats[i].o) ? 2 : 0);
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    return best;
  };

  std::function<bool(int)> recurse = [&](int depth) -> bool {
    if (depth == static_cast<int>(pats.size())) {
      BgpMatch m;
      m.bindings = binding;
      m.triples = matched;
      results.push_back(std::move(m));
      return limit == 0 || results.size() < limit;
    }
    int i = pick();
    done[i] = true;
    const CompiledPattern& pat = pats[i];

    bool keep_going = true;
    auto try_triple = [&](const Triple& t) {
      std::vector<std::pair<VarId, TermId>> newly;
      auto unify = [&](const Slot& s, TermId value) {
        if (s.is_const) return s.constant == value;
        if (binding[s.var] != kInvalidTermId) {
          return binding[s.var] == value;
        }
        for (auto& [v, val] : newly) {
          if (v == s.var) return val == value;
        }
        newly.emplace_back(s.var, value);
        return true;
      };
      if (unify(pat.s, t.s) && unify(pat.p, t.p) && unify(pat.o, t.o)) {
        for (auto& [v, val] : newly) binding[v] = val;
        matched[i] = t;
        keep_going = recurse(depth + 1);
        for (auto& [v, val] : newly) binding[v] = kInvalidTermId;
      }
    };

    TermId p_id = kInvalidTermId;
    if (pat.p.is_const) {
      p_id = pat.p.constant;
    } else if (binding[pat.p.var] != kInvalidTermId) {
      p_id = binding[pat.p.var];
    }
    if (p_id != kInvalidTermId) {
      auto it = by_predicate.find(p_id);
      if (it != by_predicate.end()) {
        for (const Triple* t : it->second) {
          if (!keep_going) break;
          try_triple(*t);
        }
      }
    } else {
      for (const Triple& t : graph.triples()) {
        if (!keep_going) break;
        try_triple(t);
      }
    }
    done[i] = false;
    return keep_going;
  };
  recurse(0);
  return results;
}

}  // namespace parqo
