#include "query/join_graph.h"

#include <algorithm>
#include <utility>

#include "common/status.h"

namespace parqo {

JoinGraph::JoinGraph(std::vector<TriplePattern> patterns)
    : patterns_(std::move(patterns)) {
  PARQO_CHECK(!patterns_.empty());
  PARQO_CHECK(patterns_.size() <= TpSet::kMaxSize);

  const int n = num_tps();
  tp_vars_.resize(n);
  tp_join_vars_.resize(n);
  adjacent_.resize(n);

  // Intern variable names to dense VarIds in order of first occurrence.
  auto intern = [&](const std::string& name) -> VarId {
    for (VarId v = 0; v < static_cast<VarId>(var_names_.size()); ++v) {
      if (var_names_[v] == name) return v;
    }
    var_names_.push_back(name);
    ntp_.emplace_back();
    return static_cast<VarId>(var_names_.size()) - 1;
  };

  for (int tp = 0; tp < n; ++tp) {
    const TriplePattern& pat = patterns_[tp];
    for (const PatternTerm* t : {&pat.s, &pat.p, &pat.o}) {
      if (!t->IsVar()) continue;
      VarId v = intern(t->var);
      if (std::find(tp_vars_[tp].begin(), tp_vars_[tp].end(), v) ==
          tp_vars_[tp].end()) {
        tp_vars_[tp].push_back(v);
        ntp_[v].Add(tp);
      }
    }
  }

  for (VarId v = 0; v < num_vars(); ++v) {
    if (IsJoinVar(v)) join_vars_.push_back(v);
  }
  for (int tp = 0; tp < n; ++tp) {
    for (VarId v : tp_vars_[tp]) {
      if (IsJoinVar(v)) {
        tp_join_vars_[tp].push_back(v);
        adjacent_[tp] |= ntp_[v];
      }
    }
    adjacent_[tp].Remove(tp);
  }
}

VarId JoinGraph::FindVar(const std::string& name) const {
  for (VarId v = 0; v < num_vars(); ++v) {
    if (var_names_[v] == name) return v;
  }
  return kInvalidVarId;
}

int JoinGraph::MaxJoinVarDegree() const {
  int best = 0;
  for (VarId v : join_vars_) best = std::max(best, ntp_[v].Count());
  return best;
}

TpSet JoinGraph::AdjacentExcluding(int tp, VarId vj) const {
  TpSet out;
  for (VarId v : tp_join_vars_[tp]) {
    if (v != vj) out |= ntp_[v];
  }
  out.Remove(tp);
  return out;
}

TpSet JoinGraph::NeighborsOf(TpSet sq) const {
  TpSet out;
  for (int tp : sq) out |= adjacent_[tp];
  return out - sq;
}

bool JoinGraph::IsConnected(TpSet sq) const {
  if (sq.Count() <= 1) return true;
  return ComponentOf(sq.First(), sq) == sq;
}

TpSet JoinGraph::ComponentOf(int seed, TpSet within) const {
  TpSet comp = TpSet::Singleton(seed);
  TpSet frontier = comp;
  while (!frontier.Empty()) {
    TpSet next;
    for (int tp : frontier) next |= adjacent_[tp];
    next &= within;
    next -= comp;
    comp |= next;
    frontier = next;
  }
  return comp;
}

TpSet JoinGraph::ComponentOfExcluding(int seed, TpSet within,
                                      VarId vj) const {
  TpSet comp = TpSet::Singleton(seed);
  TpSet frontier = comp;
  while (!frontier.Empty()) {
    TpSet next;
    for (int tp : frontier) next |= AdjacentExcluding(tp, vj);
    next &= within;
    next -= comp;
    comp |= next;
    frontier = next;
  }
  return comp;
}

std::vector<TpSet> JoinGraph::Components(TpSet within) const {
  std::vector<TpSet> out;
  TpSet rest = within;
  while (!rest.Empty()) {
    TpSet comp = ComponentOf(rest.First(), rest);
    out.push_back(comp);
    rest -= comp;
  }
  return out;
}

std::vector<TpSet> JoinGraph::ComponentsExcluding(TpSet within,
                                                  VarId vj) const {
  std::vector<TpSet> out;
  ComponentsExcluding(within, vj, &out);
  return out;
}

void JoinGraph::ComponentsExcluding(TpSet within, VarId vj,
                                    std::vector<TpSet>* out) const {
  out->clear();
  TpSet rest = within;
  while (!rest.Empty()) {
    TpSet comp = ComponentOfExcluding(rest.First(), rest, vj);
    out->push_back(comp);
    rest -= comp;
  }
}

std::vector<VarId> JoinGraph::SharedJoinVars(TpSet a, TpSet b) const {
  std::vector<VarId> out;
  for (VarId v : join_vars_) {
    if (ntp_[v].Intersects(a) && ntp_[v].Intersects(b)) out.push_back(v);
  }
  return out;
}

std::vector<VarId> JoinGraph::JoinVarsWithin(TpSet sq) const {
  std::vector<VarId> out;
  for (VarId v : join_vars_) {
    if ((ntp_[v] & sq).Count() >= 2) out.push_back(v);
  }
  return out;
}

std::vector<VarId> JoinGraph::VarsIn(TpSet sq) const {
  std::vector<VarId> out;
  for (VarId v = 0; v < num_vars(); ++v) {
    if (ntp_[v].Intersects(sq)) out.push_back(v);
  }
  return out;
}

}  // namespace parqo
