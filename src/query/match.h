// Single-machine reference evaluation of a basic graph pattern by
// backtracking. This is not the parallel engine (see executor.h); it is
// the ground truth used by tests, by data exploration, and by the
// hot-query partitioner, which needs the concrete match subgraphs of a
// query to co-locate them.

#ifndef PARQO_QUERY_MATCH_H_
#define PARQO_QUERY_MATCH_H_

#include <cstddef>
#include <vector>

#include "query/join_graph.h"
#include "rdf/graph.h"

namespace parqo {

struct BgpMatch {
  /// Variable bindings, indexed by VarId (kInvalidTermId never occurs).
  std::vector<TermId> bindings;
  /// The matched triples, parallel to the query's patterns.
  std::vector<Triple> triples;
};

/// All matches of `jg`'s patterns against `graph`, up to `limit`
/// (0 = unlimited). Patterns are evaluated most-bound-first with
/// predicate indexes, so selective queries are cheap; a fully unbound
/// pattern costs a scan per candidate.
std::vector<BgpMatch> MatchBgp(const JoinGraph& jg, const RdfGraph& graph,
                               std::size_t limit);

}  // namespace parqo

#endif  // PARQO_QUERY_MATCH_H_
