// The query graph G_Q = (V_Q, E_Q) of Section II-A: a directed labeled
// graph whose vertices are the subject/object terms of the query's triple
// patterns (variables and constants alike) and whose edges are the
// patterns. The generic partitioning model applies its combine() function
// to the vertices of this graph to derive maximal local queries
// (Section III-B and Appendix A).

#ifndef PARQO_QUERY_QUERY_GRAPH_H_
#define PARQO_QUERY_QUERY_GRAPH_H_

#include <string>
#include <vector>

#include "common/tp_set.h"
#include "query/join_graph.h"
#include "sparql/query.h"

namespace parqo {

/// One vertex of G_Q: either a variable or a constant term.
struct QueryVertex {
  bool is_var = false;
  VarId var = kInvalidVarId;  ///< When is_var.
  Term constant;              ///< When !is_var.

  TpSet out_tps;  ///< Patterns where this vertex is the subject.
  TpSet in_tps;   ///< Patterns where this vertex is the object.

  TpSet IncidentTps() const { return out_tps | in_tps; }
  std::string ToString() const;
};

class QueryGraph {
 public:
  /// Builds G_Q; `join_graph` supplies the VarIds and must outlive this.
  explicit QueryGraph(const JoinGraph& join_graph);

  const std::vector<QueryVertex>& vertices() const { return vertices_; }
  int num_vertices() const { return static_cast<int>(vertices_.size()); }
  const QueryVertex& vertex(int i) const { return vertices_[i]; }

  /// Index of the vertex for variable `v`, or -1 if `v` only occurs in
  /// predicate position (predicates are edge labels, not vertices).
  int VertexOfVar(VarId v) const;

  /// Patterns reachable from vertex `i` by following edge direction for at
  /// most `max_hops` hops (-1 = unbounded). Used by the 2f and Path-BMC
  /// combine() functions.
  TpSet ForwardReachableTps(int i, int max_hops) const;

  const JoinGraph& join_graph() const { return *join_graph_; }

 private:
  int VertexForTerm(const PatternTerm& t);

  const JoinGraph* join_graph_;
  std::vector<QueryVertex> vertices_;
  // subject/object vertex index per pattern, parallel to patterns().
  std::vector<int> subject_vertex_;
  std::vector<int> object_vertex_;
};

}  // namespace parqo

#endif  // PARQO_QUERY_QUERY_GRAPH_H_
