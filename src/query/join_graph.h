// The join graph J(Q) = (V_T, V_J, E_J) of Definition 1: a bipartite graph
// whose vertices are the query's triple patterns (V_T) and the join
// variables shared between them (V_J). All plan-enumeration algorithms
// (Algorithms 1-3), the heuristics of Section IV, and the TD-Auto decision
// tree operate on this structure.
//
// Subqueries are TpSet bitsets; the join graph provides the bitset-level
// adjacency, neighborhood, and connected-component primitives they need.
// Connectivity is defined over shared join variables: two triple patterns
// are adjacent iff they share at least one join variable. Plans never
// contain Cartesian products (problem statement, Section II-E), so a
// subquery that is disconnected here cannot appear as a join input.

#ifndef PARQO_QUERY_JOIN_GRAPH_H_
#define PARQO_QUERY_JOIN_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/tp_set.h"
#include "sparql/query.h"

namespace parqo {

/// Dense per-query variable identifier (index into JoinGraph's var table).
using VarId = std::int32_t;
inline constexpr VarId kInvalidVarId = -1;

class JoinGraph {
 public:
  /// Builds the join graph of `patterns`. The query must have at most
  /// TpSet::kMaxSize (64) triple patterns.
  explicit JoinGraph(std::vector<TriplePattern> patterns);

  //===------------------------------------------------------------------===//
  // Triple patterns (V_T)
  //===------------------------------------------------------------------===//

  int num_tps() const { return static_cast<int>(patterns_.size()); }
  const std::vector<TriplePattern>& patterns() const { return patterns_; }
  const TriplePattern& pattern(int tp) const { return patterns_[tp]; }
  TpSet AllTps() const { return TpSet::FullSet(num_tps()); }

  //===------------------------------------------------------------------===//
  // Variables and join variables (V_J)
  //===------------------------------------------------------------------===//

  int num_vars() const { return static_cast<int>(var_names_.size()); }
  const std::string& var_name(VarId v) const { return var_names_[v]; }
  /// Returns kInvalidVarId if the name does not occur in the query.
  VarId FindVar(const std::string& name) const;

  /// N_tp(v): the triple patterns containing variable v (Definition 1).
  TpSet Ntp(VarId v) const { return ntp_[v]; }
  /// |N_tp(v) & within|, the degree of v restricted to a subquery.
  int Degree(VarId v, TpSet within) const {
    return (ntp_[v] & within).Count();
  }

  bool IsJoinVar(VarId v) const { return ntp_[v].Count() >= 2; }
  /// Join variables of the whole query, ascending by VarId.
  const std::vector<VarId>& join_vars() const { return join_vars_; }
  int num_join_vars() const { return static_cast<int>(join_vars_.size()); }
  /// max_v |N_tp(v)| over join variables; 0 if there are none.
  int MaxJoinVarDegree() const;

  /// All variables of triple pattern `tp` (s/p/o order, deduplicated).
  const std::vector<VarId>& VarsOf(int tp) const { return tp_vars_[tp]; }
  /// The join variables of triple pattern `tp`.
  const std::vector<VarId>& JoinVarsOf(int tp) const {
    return tp_join_vars_[tp];
  }

  //===------------------------------------------------------------------===//
  // Bitset-level adjacency and connectivity
  //===------------------------------------------------------------------===//

  /// Triple patterns sharing a join variable with `tp`, excluding `tp`.
  TpSet Adjacent(int tp) const { return adjacent_[tp]; }

  /// Like Adjacent, but ignoring edges through join variable `vj`. Used by
  /// Algorithm 2, which analyses components of J(Q) after removing v_j.
  TpSet AdjacentExcluding(int tp, VarId vj) const;

  /// Adj(SQ) \ SQ: the neighbor patterns of a subquery (Algorithm 2 line 10).
  TpSet NeighborsOf(TpSet sq) const;

  /// True iff the subquery induces a connected join graph. The empty set
  /// and singletons are connected.
  bool IsConnected(TpSet sq) const;

  /// The connected component of `seed` within the induced subgraph on
  /// `within` (seed must be in `within`).
  TpSet ComponentOf(int seed, TpSet within) const;
  /// Same, with edges through `vj` removed.
  TpSet ComponentOfExcluding(int seed, TpSet within, VarId vj) const;

  /// All connected components of the induced subgraph on `within`.
  std::vector<TpSet> Components(TpSet within) const;
  /// Components after removing join variable `vj` (Algorithm 2 line 1).
  std::vector<TpSet> ComponentsExcluding(TpSet within, VarId vj) const;
  /// Allocation-free variant for the enumeration hot path: clears `out`
  /// and appends the components, reusing its capacity.
  void ComponentsExcluding(TpSet within, VarId vj,
                           std::vector<TpSet>* out) const;

  /// Join variables shared by subqueries `a` and `b` (occur in both).
  std::vector<VarId> SharedJoinVars(TpSet a, TpSet b) const;
  /// Join variables with at least 2 incident patterns inside `sq`.
  std::vector<VarId> JoinVarsWithin(TpSet sq) const;
  /// All variables occurring in `sq`.
  std::vector<VarId> VarsIn(TpSet sq) const;

 private:
  std::vector<TriplePattern> patterns_;
  std::vector<std::string> var_names_;
  std::vector<TpSet> ntp_;                       // per VarId
  std::vector<VarId> join_vars_;                 // ascending
  std::vector<std::vector<VarId>> tp_vars_;      // per tp
  std::vector<std::vector<VarId>> tp_join_vars_; // per tp
  std::vector<TpSet> adjacent_;                  // per tp
};

}  // namespace parqo

#endif  // PARQO_QUERY_JOIN_GRAPH_H_
