#include "query/query_graph.h"

#include "rdf/ntriples.h"

namespace parqo {

std::string QueryVertex::ToString() const {
  if (is_var) return "?var#" + std::to_string(var);
  return TermToNTriples(constant);
}

QueryGraph::QueryGraph(const JoinGraph& join_graph)
    : join_graph_(&join_graph) {
  const auto& patterns = join_graph.patterns();
  subject_vertex_.resize(patterns.size());
  object_vertex_.resize(patterns.size());
  for (int tp = 0; tp < static_cast<int>(patterns.size()); ++tp) {
    int sv = VertexForTerm(patterns[tp].s);
    int ov = VertexForTerm(patterns[tp].o);
    subject_vertex_[tp] = sv;
    object_vertex_[tp] = ov;
    vertices_[sv].out_tps.Add(tp);
    vertices_[ov].in_tps.Add(tp);
  }
}

int QueryGraph::VertexForTerm(const PatternTerm& t) {
  for (int i = 0; i < num_vertices(); ++i) {
    const QueryVertex& v = vertices_[i];
    if (t.IsVar()) {
      if (v.is_var && join_graph_->FindVar(t.var) == v.var) return i;
    } else {
      if (!v.is_var && v.constant == t.term) return i;
    }
  }
  QueryVertex v;
  if (t.IsVar()) {
    v.is_var = true;
    v.var = join_graph_->FindVar(t.var);
  } else {
    v.constant = t.term;
  }
  vertices_.push_back(std::move(v));
  return num_vertices() - 1;
}

int QueryGraph::VertexOfVar(VarId var) const {
  for (int i = 0; i < num_vertices(); ++i) {
    if (vertices_[i].is_var && vertices_[i].var == var) return i;
  }
  return -1;
}

TpSet QueryGraph::ForwardReachableTps(int i, int max_hops) const {
  TpSet tps;
  // BFS over vertices following subject->object direction.
  std::vector<int> frontier{i};
  std::vector<bool> visited(vertices_.size(), false);
  visited[i] = true;
  int hops = 0;
  while (!frontier.empty() && (max_hops < 0 || hops < max_hops)) {
    ++hops;
    std::vector<int> next;
    for (int v : frontier) {
      for (int tp : vertices_[v].out_tps) {
        tps.Add(tp);
        int ov = object_vertex_[tp];
        if (!visited[ov]) {
          visited[ov] = true;
          next.push_back(ov);
        }
      }
    }
    frontier = std::move(next);
  }
  return tps;
}

}  // namespace parqo
