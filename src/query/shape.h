// Join-graph shape classification (Section II-B, Figure 2): star, chain,
// cycle, tree, or dense. The TD-Auto decision tree (Figure 5) and the
// random query generator both depend on these categories.

#ifndef PARQO_QUERY_SHAPE_H_
#define PARQO_QUERY_SHAPE_H_

#include <string>

#include "query/join_graph.h"

namespace parqo {

enum class QueryShape {
  kSingle,        ///< One triple pattern; no joins.
  kStar,          ///< All patterns share one join variable.
  kChain,         ///< Join graph is a path.
  kCycle,         ///< Join graph is a single cycle through all patterns.
  kTree,          ///< Acyclic join graph, neither star nor chain.
  kDense,         ///< Join graph contains at least one cycle.
  kDisconnected,  ///< Query graph has no connecting join variables.
};

std::string ToString(QueryShape shape);

/// Classifies the join graph. A connected 2-pattern query is a chain if the
/// shared variable links object-of-one to subject-of-the-other (a directed
/// path in G_Q), otherwise a star; this mirrors the paper's labeling of L2
/// (chain) vs L1 (star).
QueryShape ClassifyShape(const JoinGraph& jg);

/// Number of independent cycles of the (bipartite) join graph:
/// E - |V_T| - |V_J| + #components, restricted to patterns containing at
/// least one join variable.
int CyclomaticNumber(const JoinGraph& jg);

/// |V_T| / |V_J| as used by the TD-Auto decision tree (Figure 5).
/// Returns +infinity when there are no join variables.
double TpToJoinVarRatio(const JoinGraph& jg);

}  // namespace parqo

#endif  // PARQO_QUERY_SHAPE_H_
